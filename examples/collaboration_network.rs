//! Scenario: the paper's DBLP case study (Eval-IX, Figures 20–21) on a
//! synthetic co-authorship network — compare the top-1 influential
//! γ-**core** community against the top-1 influential γ-**truss**
//! community and observe the relationship the paper reports: the truss
//! community is smaller and denser, has a lower influence value (the
//! γ-truss constraint is harder to satisfy), and is contained in a
//! (γ−1)-community with the same influence.
//!
//! ```sh
//! cargo run --release --example collaboration_network
//! ```

use ic_core::query::Selection;
use ic_core::{AlgorithmId, TopKQuery};
use ic_graph::generators::{assemble, collaboration, WeightKind};

/// Deterministic researcher-style label for a vertex id.
fn name(id: u64) -> String {
    const FIRST: [&str; 8] = [
        "Ada", "Edsger", "Grace", "Barbara", "Donald", "Leslie", "Frances", "Tony",
    ];
    const LAST: [&str; 8] = [
        "Liu", "Okafor", "Petrov", "Nakamura", "Garcia", "Schmidt", "Rossi", "Haddad",
    ];
    format!(
        "{} {}-{:03}",
        FIRST[(id % 8) as usize],
        LAST[((id / 8) % 8) as usize],
        id
    )
}

fn main() {
    println!("synthesizing a collaboration network (600 research groups)...");
    let (n, edges) = collaboration(600, 77);
    let g = assemble(n, &edges, WeightKind::PageRank);
    println!("  {} researchers, {} co-authorship edges", g.n(), g.m());

    // the paper's case study uses a 5-community and a 6-truss community
    let core_gamma = 5;
    let truss_gamma = 6;

    // the same typed query answers both community families: the γ-core
    // default and the γ-truss instantiation behind AlgorithmId::Truss
    let core_top = TopKQuery::new(core_gamma).run(&g).expect("valid query");
    let truss_top = TopKQuery::new(truss_gamma)
        .algorithm(Selection::Forced(AlgorithmId::Truss))
        .run(&g)
        .expect("valid query");

    match (core_top.communities.first(), truss_top.communities.first()) {
        (Some(core), Some(trs)) => {
            println!(
                "\ntop-1 influential {core_gamma}-community ({} members):",
                core.len()
            );
            for &r in core.members.iter().take(12) {
                println!("    {}", name(g.external_id(r)));
            }
            if core.len() > 12 {
                println!("    ... and {} more", core.len() - 12);
            }
            println!(
                "\ntop-1 influential {truss_gamma}-truss community ({} members):",
                trs.len()
            );
            for &r in &trs.members {
                println!("    {}", name(g.external_id(r)));
            }
            println!(
                "\ninfluence values: core {:.3e} vs truss {:.3e}",
                core.influence, trs.influence
            );
            // the paper's observations
            assert!(
                trs.len() <= core.len(),
                "truss communities are smaller/denser than core communities"
            );
            assert!(
                trs.influence <= core.influence,
                "the γ-truss constraint is harder to satisfy, so truss \
                 communities have lower influence"
            );
            // containment: the truss community lies inside the
            // (γ−1)-community with the same influence value
            let parents = TopKQuery::new(truss_gamma - 1)
                .k(TopKQuery::MAX_K)
                .run(&g)
                .expect("valid query");
            let parent = parents
                .communities
                .iter()
                .find(|c| c.influence == trs.influence)
                .expect("every truss community has a core parent");
            let inside = trs.members.iter().all(|m| parent.members.contains(m));
            assert!(inside, "truss community must nest in its (γ-1)-core parent");
            println!(
                "containment check: truss community ⊆ its {}-community parent ({} members) ✓",
                truss_gamma - 1,
                parent.len()
            );
        }
        _ => println!("no sufficiently cohesive community found — regenerate with more groups"),
    }
}

//! Quickstart: build a small weighted graph, ask for the top-k influential
//! γ-communities, and print them.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use influential_communities::prelude::*;

fn main() {
    // A graph is a set of weighted vertices plus undirected edges. Weights
    // are "influence" (PageRank, h-index, follower count, ...); here we
    // assign them by hand. This is the paper's Figure 1 example.
    let mut b = GraphBuilder::new();
    for v in 0..10u64 {
        b.set_weight(v, 10.0 + v as f64);
    }
    for (u, v) in [
        (0, 1),
        (0, 5),
        (0, 6),
        (1, 5),
        (1, 6),
        (5, 6), // one dense block
        (1, 2),
        (2, 3), // a bridge
        (3, 4),
        (3, 7),
        (3, 8),
        (3, 9),
        (4, 7),
        (4, 8), // another block
        (7, 8),
        (7, 9),
        (8, 9),
    ] {
        b.add_edge(u, v);
    }
    let g: WeightedGraph = b.build().expect("valid graph");

    // Top-2 influential 3-communities: each is connected, every member has
    // at least 3 neighbors inside, and it is maximal for its influence
    // value (= the minimum member weight). One typed query, validated
    // once, dispatched to the best algorithm automatically.
    let gamma = 3;
    let k = 2;
    let query = TopKQuery::new(gamma).k(k);
    let result = query.run(&g).expect("valid query");

    println!(
        "top-{k} influential {gamma}-communities of a {}-vertex graph:",
        g.n()
    );
    for (i, c) in result.communities.iter().enumerate() {
        println!(
            "  #{}: influence {:.1}, members {:?}",
            i + 1,
            c.influence,
            c.external_members(&g)
        );
    }
    println!(
        "accessed subgraph: {} of {} vertices+edges ({} rounds)",
        result.stats.final_prefix_size,
        g.size(),
        result.stats.rounds
    );

    // The same query as a progressive stream: communities arrive in
    // decreasing influence order and you may stop at any time — no k.
    println!("\nprogressive stream (stop whenever):");
    for c in TopKQuery::new(gamma)
        .stream(&g)
        .expect("valid query")
        .take(2)
    {
        println!(
            "  influence {:.1}: {:?}",
            c.influence,
            c.external_members(&g)
        );
    }
}

//! Scenario: interactive exploration without choosing k up front.
//!
//! LocalSearch-P reports communities progressively in decreasing influence
//! order; the consumer can stop at any moment (§4: "the user can terminate
//! the algorithm at any time once determining that enough influential
//! γ-communities have been reported"). This example measures the latency
//! at which each of the first 16 communities becomes available and
//! contrasts it with the batch algorithm, which only answers at the end —
//! the phenomenon behind Figure 14.
//!
//! ```sh
//! cargo run --release --example progressive_stream
//! ```

use ic_core::query::Selection;
use ic_core::{AlgorithmId, TopKQuery};
use ic_graph::generators::{assemble, rmat, RmatParams, WeightKind};
use std::time::Instant;

fn main() {
    let scale = 15;
    println!("synthesizing an R-MAT graph (scale {scale}, edge factor 12)...");
    let edges = rmat(scale, 12, RmatParams::default(), 99);
    let g = assemble(1 << scale, &edges, WeightKind::PageRank);
    println!("  |V| = {}, |E| = {}", g.n(), g.m());

    let gamma = 8;
    let want = 16;

    println!("\nstreaming communities (γ = {gamma}):");
    println!(
        "  {:>5} {:>12} {:>12} {:>9}",
        "top-i", "influence", "latency", "members"
    );
    let t0 = Instant::now();
    // an Auto-selected stream is the true LocalSearch-P iterator: lazy,
    // unbounded, pays only for the prefix consumed so far
    let mut stream = TopKQuery::new(gamma).stream(&g).expect("valid query");
    assert!(stream.is_live());
    let mut count = 0usize;
    for c in stream.by_ref() {
        count += 1;
        println!(
            "  {:>5} {:>12.3e} {:>12.3?} {:>9}",
            count,
            c.influence,
            t0.elapsed(),
            c.len()
        );
        if count == want {
            break;
        }
    }
    let accessed = stream.stats().final_prefix_size;
    drop(stream);

    // batch comparison: the non-progressive algorithm delivers all k
    // results only when it finishes
    let t0 = Instant::now();
    let batch = TopKQuery::new(gamma)
        .k(want)
        .algorithm(Selection::Forced(AlgorithmId::LocalSearch))
        .run(&g)
        .expect("valid query");
    let t_batch = t0.elapsed();
    println!(
        "\nbatch LocalSearch produced all {} communities after {:?}",
        batch.communities.len(),
        t_batch
    );
    println!(
        "accessed subgraph: progressive {} vs batch {} (of {} total)",
        accessed,
        batch.stats.final_prefix_size,
        g.size()
    );
}

//! Scenario: find the most influential tightly-knit circles in a social
//! network — the paper's motivating application ("detecting cohesive
//! communities consisting of celebrities or influential people in social
//! networks").
//!
//! We synthesize a 20 000-user preferential-attachment network, weight
//! users by PageRank (damping 0.85, as in the paper's evaluation), and
//! compare LocalSearch against the global Forward baseline — both the
//! answers (identical) and the amount of graph each one touches.
//!
//! ```sh
//! cargo run --release --example social_influencers
//! ```

use ic_core::query::Selection;
use ic_core::{AlgorithmId, TopKQuery};
use ic_graph::generators::{assemble, barabasi_albert, WeightKind};
use std::time::Instant;

fn main() {
    let n = 20_000;
    println!("synthesizing a {n}-user social network (Barabási–Albert, d=8)...");
    let edges = barabasi_albert(n, 8, 2024);
    let g = assemble(n, &edges, WeightKind::PageRank);
    println!("  |V| = {}, |E| = {}", g.n(), g.m());

    let gamma = 6;
    let k = 5;

    // one typed query, two pinned algorithms — identical answers,
    // wildly different amounts of graph touched
    let query = TopKQuery::new(gamma).k(k);
    let t0 = Instant::now();
    let local = query
        .algorithm(Selection::Forced(AlgorithmId::LocalSearch))
        .run(&g)
        .expect("valid query");
    let t_local = t0.elapsed();

    let t0 = Instant::now();
    let global = query
        .algorithm(Selection::Forced(AlgorithmId::Forward))
        .run(&g)
        .expect("valid query");
    let t_global = t0.elapsed();

    println!("\ntop-{k} influential {gamma}-communities:");
    for (i, c) in local.communities.iter().enumerate() {
        let preview: Vec<u64> = c.external_members(&g).into_iter().take(8).collect();
        println!(
            "  #{}: influence {:.3e}, {} members, e.g. users {:?}",
            i + 1,
            c.influence,
            c.len(),
            preview
        );
    }

    // sanity: both algorithms agree on every community
    assert_eq!(local.communities.len(), global.communities.len());
    for (a, b) in local.communities.iter().zip(&global.communities) {
        assert_eq!(a.members, b.members, "local and global answers must match");
    }

    println!("\ncost comparison (identical answers):");
    println!(
        "  LocalSearch: {:>9.3?}  touched {:>9} of {} vertices+edges ({:.3}%)",
        t_local,
        local.stats.final_prefix_size,
        g.size(),
        100.0 * local.stats.final_prefix_size as f64 / g.size() as f64
    );
    println!(
        "  Forward:     {t_global:>9.3?}  touched {:>9} (the whole graph)",
        global.stats.final_prefix_size
    );
}

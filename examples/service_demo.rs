//! The query-serving subsystem driven in-process: registers two graphs,
//! speaks the same line protocol the TCP `serve` binary speaks, and shows
//! the planner, the result cache, and a progressive session at work.
//!
//! ```sh
//! cargo run --example service_demo
//! ```

use influential_communities::graph::paper::figure3;
use influential_communities::service::protocol::handle_line;
use influential_communities::service::{Service, ServiceConfig};

fn main() {
    // A service sized like a small deployment: 4 workers, a result cache.
    let svc = Service::new(ServiceConfig {
        workers: 4,
        cache_capacity: 256,
        cache_shards: 8,
        ..ServiceConfig::default()
    });

    // Graphs are registered once and shared, immutably, across workers.
    svc.register("fig3", figure3());

    // Every request below goes through the exact request → reply function
    // the TCP front-end uses, so this demo doubles as a protocol tour.
    let script = [
        "# register a synthetic social network alongside the paper graph",
        "GEN social ba 400 4 42",
        "GRAPHS",
        "# the planner explains itself before running anything",
        "EXPLAIN fig3 3 4",
        "EXPLAIN social 2 300",
        "# batch queries: the second is a cache hit",
        "QUERY fig3 3 4",
        "QUERY fig3 3 4",
        "# force a specific algorithm — same answer, different plan",
        "QUERY fig3 3 4 online_all",
        "# the truss family answers through the same verb (own cache lane)",
        "QUERY fig3 4 1 truss",
        "# progressive session: pull communities one at a time",
        "OPEN social 4",
        "NEXT 1",
        "NEXT 1 2",
        "CLOSE 1",
        "STATS",
    ];
    for line in script {
        if line.starts_with('#') {
            println!("{line}");
            continue;
        }
        println!("> {line}");
        println!("{}", handle_line(&svc, line));
    }
}

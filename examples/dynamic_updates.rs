//! The dynamic-update subsystem end to end: a live network absorbs edge
//! and vertex churn through `UPDATE`/`COMMIT` while queries keep
//! answering, and the same flow is shown library-level on a
//! `DynamicGraph` with its incremental core maintenance receipts.
//!
//! ```sh
//! cargo run --example dynamic_updates
//! ```

use influential_communities::dynamic::DynamicGraph;
use influential_communities::graph::paper::figure3;
use influential_communities::prelude::TopKQuery;
use influential_communities::service::protocol::handle_line;
use influential_communities::service::{Service, ServiceConfig};

fn main() {
    // --- protocol level: UPDATE ... COMMIT against a running service ---
    let svc = Service::new(ServiceConfig {
        workers: 2,
        cache_capacity: 64,
        cache_shards: 4,
        ..ServiceConfig::default()
    });
    svc.register("net", figure3());

    let script = [
        "# the paper graph's top community is the clique {3,11,12,20}",
        "QUERY net 3 1",
        "# sever its cheapest edge; nothing visible until COMMIT",
        "UPDATE net DEL 3 11",
        "QUERY net 3 1",
        "# the planner reports how stale the snapshot's cores are",
        "EXPLAIN net 3 1",
        "# grow a fresh high-influence clique (vertices created on the fly)",
        "UPDATE net ADD 50 51 30",
        "UPDATE net ADD 52 50 30",
        "UPDATE net ADD 52 51 30",
        "UPDATE net ADD 53 50 30",
        "UPDATE net ADD 53 51 30",
        "UPDATE net ADD 53 52 30",
        "# fold everything in: new generation, cache invalidated",
        "COMMIT net",
        "QUERY net 3 1",
        "STATS",
    ];
    for line in script {
        if line.starts_with('#') {
            println!("{line}");
            continue;
        }
        println!("> {line}");
        println!("{}", handle_line(&svc, line));
    }

    // --- library level: the same machinery without a service ------------
    println!("\n# library level: DynamicGraph with maintenance receipts");
    let mut dg = DynamicGraph::new(figure3());
    dg.delete_edge(3, 11).expect("edge exists");
    dg.add_vertex(100, 25.0).expect("fresh vertex");
    dg.insert_edge(100, 12).expect("both endpoints exist");
    println!(
        "pending={} stale_core_fraction={:.3} gamma_max={}",
        dg.pending_updates(),
        dg.stale_core_fraction(),
        dg.gamma_max()
    );
    let receipt = dg.commit();
    println!(
        "committed: n={} m={} gamma_max={} ops={} cores_visited={} refreshed={}",
        receipt.stats.n,
        receipt.stats.m,
        receipt.stats.gamma_max,
        receipt.ops_applied,
        receipt.cores_visited,
        receipt.refreshed_cores
    );
    // committed snapshots answer through the same unified query API
    let top = dg.query(&TopKQuery::new(3)).expect("valid query");
    let c = &top.communities[0];
    println!(
        "top community after churn: influence={} members={:?}",
        c.influence,
        c.external_members(&receipt.graph)
    );
}

//! A minimal, offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the small API subset our benches use — `Criterion::benchmark_group`,
//! group configuration (`sample_size` / `measurement_time` /
//! `warm_up_time`), `bench_function`, `finish`, and the
//! `criterion_group!` / `criterion_main!` macros — with a real measuring
//! loop behind it: each benchmark is warmed up, then timed for
//! `sample_size` samples (bounded by `measurement_time`), and the
//! min/mean/max per-iteration times are printed in a criterion-like
//! format. Swapping in the real criterion later only requires changing
//! the dependency, not the benches.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle, handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    /// Substring filter from the command line (`cargo bench <filter>`).
    filter: Option<String>,
}

impl Criterion {
    /// Parses the arguments cargo's bench runner forwards. Flags we do not
    /// implement (`--bench`, `--save-baseline <name>`, …) are ignored; the
    /// first free-standing argument becomes a substring filter.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" | "--nocapture" | "--quiet" | "--verbose" => {}
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time"
                | "--sample-size" | "--color" => {
                    let _ = args.next();
                }
                s if s.starts_with("--") => {}
                s => {
                    // Real criterion rejects a second positional filter;
                    // silently keeping only one would skew baselines.
                    assert!(
                        self.filter.is_none(),
                        "at most one benchmark filter is supported, got both \
                         {:?} and {s:?}",
                        self.filter.as_deref().unwrap()
                    );
                    self.filter = Some(s.to_string());
                }
            }
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Target number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Upper bound on total measuring time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Time spent running the routine before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Measures one routine and prints its per-iteration statistics.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }

        // Warm-up: run (and discard) until the warm-up budget elapses.
        let warm_start = Instant::now();
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        while warm_start.elapsed() < self.warm_up_time {
            b.elapsed = Duration::ZERO;
            b.iters = 0;
            f(&mut b);
        }

        // Measurement: `sample_size` samples, clipped by `measurement_time`.
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            b.iters = 0;
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
            if measure_start.elapsed() >= self.measurement_time && !samples.is_empty() {
                break;
            }
        }

        let n = samples.len().max(1) as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0f64, f64::max);
        println!(
            "{full:<60} time: [{} {} {}]",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max)
        );
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op kept for
    /// API compatibility).
    pub fn finish(self) {}
}

/// Timing handle passed to the benchmarked closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, choosing an iteration count so one sample is long
    /// enough to be measurable.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One calibration run decides how many iterations a sample needs to
        // dominate timer quantization (~aim for >= 100µs per sample).
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed();
        let reps = if once >= Duration::from_micros(100) {
            1
        } else {
            (Duration::from_micros(100).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u64
        };
        let t1 = Instant::now();
        for _ in 0..reps {
            black_box(routine());
        }
        self.elapsed += t1.elapsed() + once;
        self.iters += reps + 1;
    }
}

fn fmt_time(secs: f64) -> String {
    if !secs.is_finite() {
        "-".into()
    } else if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = false;
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_non_matching() {
        let c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut c = c;
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("other", |_b| ran = true);
        assert!(!ran);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(2.5), "2.5000 s");
        assert!(fmt_time(0.0025).ends_with("ms"));
        assert!(fmt_time(2.5e-6).ends_with("µs"));
        assert!(fmt_time(2.5e-9).ends_with("ns"));
    }
}

//! A minimal, offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the API subset our property suites use: the [`Strategy`] trait over
//! integer ranges and tuples of strategies, [`ProptestConfig`], the
//! [`proptest!`] macro (with the `#![proptest_config(..)]` inner
//! attribute and `pattern in strategy` argument syntax), and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros. Test
//! bodies run inside a closure returning `Result<(), TestCaseError>`,
//! exactly like the real crate, so assertion macros short-circuit the
//! case and `prop_assume!` rejections skip it. Inputs are drawn from a
//! deterministic per-test RNG, so failures reproduce across runs.
//! Swapping in the real proptest later only requires changing the
//! dependency, not the tests.

use std::fmt;
use std::ops::Range;

pub mod prelude {
    //! The subset of `proptest::prelude` our tests import.
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy};
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the test as a whole fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
        }
    }
}

/// Deterministic SplitMix64 generator driving input sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator; each `proptest!` test derives its seed from its
    /// own name so sequences are stable per test, not shared across tests.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Derives a seed from a test's name (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A source of random values for one test argument.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Declares property tests. Supports the real crate's surface syntax:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// // In real suites each function carries `#[test]`; here we call the
/// // generated runner directly so the doctest executes it.
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( config = ($cfg:expr); ) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            let mut rejected = 0u32;
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let () = $body;
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject) => rejected += 1,
                    Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        msg
                    ),
                }
            }
            assert!(
                rejected < config.cases,
                "`{}`: every generated case was rejected by prop_assume!",
                stringify!($name)
            );
        }
        $crate::__proptest_tests! { config = ($cfg); $($rest)* }
    };
}

/// Asserts a condition, failing the current case (with shrink-free
/// reporting) instead of panicking mid-closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality, failing the current case with both values on mismatch.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                left,
                right
            )));
        }
    }};
}

/// Skips the current case when its generated inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::sample(&(5usize..9), &mut rng);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::new(7);
        let (a, b, c) = Strategy::sample(&(0u32..4, 10u64..20, 3usize..5), &mut rng);
        assert!(a < 4 && (10..20).contains(&b) && (3..5).contains(&c));
    }

    #[test]
    fn deterministic_per_seed() {
        let mut r1 = TestRng::from_name("x");
        let mut r2 = TestRng::from_name("x");
        for _ in 0..10 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end((a, b) in (0u32..100, 0u32..100), c in 1usize..4) {
            prop_assume!(a != 99);
            prop_assert!(c >= 1);
            prop_assert_eq!(a + b, b + a);
        }
    }
}

//! CI smoke-load: generate a small deterministic trace, boot the real
//! service on an ephemeral port, and replay the trace open-loop at two
//! target rates. The bar is correctness, not throughput — every event
//! must complete with zero protocol and zero I/O errors, which
//! exercises the full request mix (cold/cached/batch/session/update)
//! against the live TCP stack.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use influential_communities::load::{generate, replay, ReplayOptions, WorkloadSpec};
use influential_communities::service::{serve_with, ServerOptions, Service, ServiceConfig};

fn boot(workers: usize) -> (String, Arc<Service>) {
    let svc = Service::new(ServiceConfig {
        workers,
        ..ServiceConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr").to_string();
    let accept_svc = Arc::clone(&svc);
    std::thread::spawn(move || {
        let _ = serve_with(
            &listener,
            accept_svc,
            ServerOptions {
                idle_timeout: Some(Duration::from_secs(10)),
            },
        );
    });
    (addr, svc)
}

#[test]
fn smoke_load_replays_cleanly_at_two_rates() {
    let spec = WorkloadSpec {
        seed: 7,
        qps: 150.0,
        duration_s: 1.0,
        ..WorkloadSpec::default()
    };
    let trace = generate(&spec);
    assert!(!trace.events.is_empty(), "workload produced no events");

    let (addr, svc) = boot(2);

    for target in [150.0, 300.0] {
        let opts = ReplayOptions {
            addr: addr.clone(),
            connections: 3,
            target_qps: target,
        };
        let report = replay(&trace, &opts).expect("replay runs");
        assert_eq!(
            report.sent,
            trace.events.len() as u64,
            "every event attempted at target {target}"
        );
        assert_eq!(
            report.protocol_errors, 0,
            "no ERR replies at target {target}"
        );
        assert_eq!(report.io_errors, 0, "no dropped events at target {target}");
        assert_eq!(report.ok, report.sent, "all events completed OK");
        let class_total: u64 = report.classes.iter().map(|c| c.count).sum();
        assert_eq!(class_total, report.ok, "per-class counts add up");
        assert!(report.p99_us > 0.0, "latency was actually measured");
    }

    // The replay drove real queries through the service, not a stub.
    let stats = svc.stats();
    assert!(stats.queries > 0, "service saw queries");
    assert_eq!(stats.accept_errors, 0, "clean run had no accept errors");
}

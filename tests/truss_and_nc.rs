//! Integration tests for the §5 extensions on random graphs: γ-truss
//! community search and non-containment community search, cross-validated
//! against the definition-level references.

use ic_graph::generators::{assemble, gnm, planted_partition, WeightKind};
use ic_graph::WeightedGraph;
use influential_communities::search::{naive, noncontainment, truss};
use proptest::prelude::*;

fn graphs() -> Vec<WeightedGraph> {
    let mut gs = Vec::new();
    for seed in 0..4u64 {
        let n = 40 + seed as usize * 10;
        gs.push(assemble(
            n,
            &gnm(n, n * 4, seed),
            WeightKind::Uniform(seed * 7 + 1),
        ));
    }
    gs.push(assemble(
        45,
        &planted_partition(3, 15, 0.7, 0.05, 3),
        WeightKind::PageRank,
    ));
    gs
}

#[test]
fn truss_local_and_global_match_reference() {
    for (i, g) in graphs().iter().enumerate() {
        for gamma in 2..=5u32 {
            let reference = naive::all_truss_communities(g, gamma);
            let global = truss::global_top_k(g, gamma, usize::MAX / 2);
            assert_eq!(global.communities.len(), reference.len(), "g{i} γ={gamma}");
            for (a, b) in global.communities.iter().zip(&reference) {
                assert_eq!(a.keynode, b.keynode, "g{i} γ={gamma}");
                assert_eq!(a.members, b.members, "g{i} γ={gamma}");
            }
            for k in [1usize, 2, 4] {
                let local = truss::local_top_k(g, gamma, k);
                let expect: Vec<_> = reference.iter().take(k).collect();
                assert_eq!(
                    local.communities.len(),
                    expect.len(),
                    "g{i} γ={gamma} k={k}"
                );
                for (a, b) in local.communities.iter().zip(&expect) {
                    assert_eq!(a.members, b.members, "g{i} γ={gamma} k={k}");
                }
            }
        }
    }
}

#[test]
fn nc_matches_reference_on_random_graphs() {
    for (i, g) in graphs().iter().enumerate() {
        for gamma in 2..=4u32 {
            let reference = naive::all_noncontainment(g, gamma);
            let got = noncontainment::forward_top_k(g, gamma, usize::MAX / 2);
            assert_eq!(got.communities.len(), reference.len(), "g{i} γ={gamma}");
            for (a, b) in got.communities.iter().zip(&reference) {
                assert_eq!(a.keynode, b.keynode, "g{i} γ={gamma}");
                assert_eq!(a.members, b.members, "g{i} γ={gamma}");
            }
            // local agrees with global for various k
            for k in [1usize, 3, 8] {
                let local = noncontainment::local_top_k(g, gamma, k);
                let expect: Vec<_> = reference.iter().take(k).collect();
                assert_eq!(local.communities.len(), expect.len());
                for (a, b) in local.communities.iter().zip(&expect) {
                    assert_eq!(a.members, b.members, "g{i} γ={gamma} k={k}");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truss communities always nest inside a (γ−1)-core community with
    /// the same influence (the paper's Eval-IX observation).
    #[test]
    fn truss_nests_in_core(n in 12usize..40, d in 2usize..6, seed in 0u64..3000, gamma in 3u32..5) {
        let g = assemble(n, &gnm(n, n * d, seed), WeightKind::Uniform(seed + 5));
        let trusses = truss::global_top_k(&g, gamma, usize::MAX / 2);
        let cores = naive::all_communities(&g, gamma - 1);
        for t in &trusses.communities {
            let parent = cores.iter().find(|c| c.influence == t.influence);
            prop_assert!(parent.is_some(), "missing (γ-1)-core parent");
            let pset: std::collections::HashSet<u32> =
                parent.unwrap().members.iter().copied().collect();
            prop_assert!(t.members.iter().all(|m| pset.contains(m)));
        }
    }

    /// NC communities are exactly the subset-minimal communities, and the
    /// NC set is disjoint.
    #[test]
    fn nc_is_minimal_and_disjoint(n in 10usize..36, d in 2usize..5, seed in 0u64..3000, gamma in 2u32..4) {
        let g = assemble(n, &gnm(n, n * d, seed), WeightKind::Uniform(seed ^ 3));
        let nc = noncontainment::forward_top_k(&g, gamma, usize::MAX / 2);
        let all = naive::all_communities(&g, gamma);
        let mut seen = std::collections::HashSet::new();
        for c in &nc.communities {
            let cset: std::collections::HashSet<u32> = c.members.iter().copied().collect();
            // disjointness
            for &m in &c.members {
                prop_assert!(seen.insert(m), "overlap between NC communities");
            }
            // minimality: no other community strictly inside
            for other in &all {
                if other.keynode != c.keynode {
                    let strictly_inside = other.members.len() < c.members.len()
                        && other.members.iter().all(|m| cset.contains(m));
                    prop_assert!(!strictly_inside, "NC community contains another");
                }
            }
        }
    }
}

//! Kill-and-restart recovery for the `--data-dir` durability layer.
//!
//! Each case builds a [`Service::with_persistence`] instance, drives it
//! through registrations / updates / commits, *drops it cold* (no
//! orderly shutdown exists to lean on — dropping the service is the
//! crash), then reopens the same data directory with a fresh instance
//! and checks the recovered world:
//!
//! * every committed generation comes back under its original number,
//! * recovered answers equal the answers served before the "crash",
//! * acknowledged-but-uncommitted updates are discarded (the protocol
//!   only promises durability at `COMMIT`),
//! * file-backed (`LOADX`) registrations are reopened from their
//!   `.icsr` pointer and still plan semi-externally,
//! * a WAL tail torn mid-record by the crash does not poison recovery.

use influential_communities::graph::paper::figure3;
use influential_communities::graph::scratch::ScratchDir;
use influential_communities::graph::StorageKind;
use influential_communities::prelude::*;
use influential_communities::service::ServiceError;
use std::fs;
use std::path::Path;
use std::sync::Arc;

fn durable(dir: &Path) -> Arc<Service> {
    Service::with_persistence(ServiceConfig::default(), dir).expect("open data dir")
}

fn top_k(svc: &Arc<Service>, name: &str, gamma: u32, k: usize) -> Vec<Community> {
    svc.query(Query::new(name, gamma, k))
        .expect("query")
        .communities
        .to_vec()
}

#[test]
fn committed_generations_survive_a_restart() {
    let scratch = ScratchDir::new("recovery-basic");
    let dir = scratch.path().join("data");

    let (generation, before) = {
        let svc = durable(&dir);
        svc.register("fig3", figure3());
        // one committed batch of churn...
        svc.update(
            "fig3",
            UpdateOp::AddVertex {
                v: 100,
                weight: 21.5,
            },
        )
        .unwrap();
        svc.update(
            "fig3",
            UpdateOp::InsertEdge {
                u: 100,
                v: 12,
                default_weight: None,
            },
        )
        .unwrap();
        let (entry, receipt) = svc.commit_updates("fig3").unwrap();
        assert_eq!(receipt.ops_applied, 2);
        // ...and an acknowledged tail that must NOT survive
        svc.update("fig3", UpdateOp::RemoveVertex { v: 100 })
            .unwrap();
        assert!(svc.persistence_degraded().is_none());
        (entry.generation, top_k(&svc, "fig3", 3, 4))
    }; // <- crash

    let svc = durable(&dir);
    let entry = svc.graph("fig3").expect("fig3 recovered");
    assert_eq!(
        entry.generation, generation,
        "recovered graphs keep the generation clients saw at commit"
    );
    assert_eq!(
        entry.stats.n,
        figure3().n() + 1,
        "committed AddVertex survived"
    );
    assert_eq!(top_k(&svc, "fig3", 3, 4), before);
    assert_eq!(
        svc.pending_updates("fig3"),
        0,
        "the uncommitted tail was discarded"
    );
    // the recovered instance keeps full dynamic service
    svc.update("fig3", UpdateOp::Reweight { v: 12, weight: 1.0 })
        .unwrap();
    let (entry2, _) = svc.commit_updates("fig3").unwrap();
    assert!(
        entry2.generation > generation,
        "post-recovery generations stay strictly monotone"
    );
}

#[test]
fn multiple_graphs_and_commit_rounds_recover_independently() {
    let scratch = ScratchDir::new("recovery-multi");
    let dir = scratch.path().join("data");

    let (gen_a, gen_b, a_before, b_before) = {
        let svc = durable(&dir);
        svc.register("a", figure3());
        svc.register("b", figure3());
        // two commit rounds on `a`
        svc.update("a", UpdateOp::AddVertex { v: 50, weight: 3.0 })
            .unwrap();
        svc.commit_updates("a").unwrap();
        svc.update(
            "a",
            UpdateOp::InsertEdge {
                u: 50,
                v: 1,
                default_weight: None,
            },
        )
        .unwrap();
        let (ea, _) = svc.commit_updates("a").unwrap();
        // `b` stays at its registration baseline
        let eb = svc.graph("b").unwrap();
        (
            ea.generation,
            eb.generation,
            top_k(&svc, "a", 2, 8),
            top_k(&svc, "b", 2, 8),
        )
    };

    let svc = durable(&dir);
    assert_eq!(svc.graph("a").unwrap().generation, gen_a);
    assert_eq!(svc.graph("b").unwrap().generation, gen_b);
    assert_eq!(top_k(&svc, "a", 2, 8), a_before);
    assert_eq!(top_k(&svc, "b", 2, 8), b_before);
    // the graphs really did diverge: only `a` carries the committed churn
    assert_eq!(svc.graph("a").unwrap().stats.n, figure3().n() + 1);
    assert_eq!(svc.graph("b").unwrap().stats.n, figure3().n());
}

#[test]
fn file_backed_registrations_recover_from_their_pointer() {
    let scratch = ScratchDir::new("recovery-loadx");
    let dir = scratch.path().join("data");
    let icsr = scratch.path().join("fig3.icsr");

    let (generation, before) = {
        let svc = durable(&dir);
        svc.register("fig3", figure3());
        svc.save_store("fig3", icsr.to_str().unwrap()).unwrap();
        let entry = svc
            .register_file("fig3x", icsr.to_str().unwrap(), None)
            .unwrap();
        (entry.generation, top_k(&svc, "fig3x", 3, 4))
    };

    let svc = durable(&dir);
    let entry = svc.graph("fig3x").expect("file-backed graph recovered");
    assert_eq!(entry.generation, generation);
    assert_eq!(entry.store.kind(), StorageKind::File);
    let plan = svc.explain(&Query::new("fig3x", 3, 4)).unwrap();
    assert_eq!(plan.storage, StorageKind::File);
    assert_eq!(top_k(&svc, "fig3x", 3, 4), before);
    assert_eq!(
        top_k(&svc, "fig3", 3, 4),
        before,
        "memory twin recovered too"
    );
}

#[test]
fn torn_wal_tail_recovers_to_the_last_commit() {
    let scratch = ScratchDir::new("recovery-torn");
    let dir = scratch.path().join("data");

    let (generation, before) = {
        let svc = durable(&dir);
        svc.register("fig3", figure3());
        svc.update("fig3", UpdateOp::AddVertex { v: 77, weight: 9.0 })
            .unwrap();
        let (entry, _) = svc.commit_updates("fig3").unwrap();
        (entry.generation, top_k(&svc, "fig3", 3, 4))
    };

    // Simulate a crash mid-append: every WAL in the data dir gets a torn
    // (unterminated, half-written) record glued to its end.
    let mut torn = 0;
    for f in fs::read_dir(&dir).unwrap().flatten() {
        if f.path().extension().is_some_and(|e| e == "wal") {
            let mut bytes = fs::read(f.path()).unwrap();
            bytes.extend_from_slice(b"add_vertex 99 1");
            fs::write(f.path(), bytes).unwrap();
            torn += 1;
        }
    }
    assert_eq!(torn, 1, "expected exactly one WAL on disk");

    let svc = durable(&dir);
    let entry = svc.graph("fig3").unwrap();
    assert_eq!(entry.generation, generation);
    assert_eq!(entry.stats.n, figure3().n() + 1, "committed op survived");
    assert_eq!(top_k(&svc, "fig3", 3, 4), before);
}

#[test]
fn re_registration_supersedes_committed_history() {
    let scratch = ScratchDir::new("recovery-rereg");
    let dir = scratch.path().join("data");

    {
        let svc = durable(&dir);
        svc.register("fig3", figure3());
        svc.update("fig3", UpdateOp::AddVertex { v: 60, weight: 2.0 })
            .unwrap();
        svc.commit_updates("fig3").unwrap();
        // wholesale replacement: the committed churn belongs to the old
        // incarnation and must not replay onto the new snapshot
        svc.register("fig3", figure3());
    }

    let svc = durable(&dir);
    assert_eq!(svc.graph("fig3").unwrap().stats.n, figure3().n());
}

#[test]
fn in_memory_services_are_unaffected_and_errors_stay_typed() {
    // No data dir: the persistence hooks must be entirely absent.
    let svc = Service::with_defaults();
    svc.register("fig3", figure3());
    assert!(svc.persistence_degraded().is_none());
    svc.update(
        "fig3",
        UpdateOp::AddVertex {
            v: 5000,
            weight: 1.0,
        },
    )
    .unwrap();
    svc.commit_updates("fig3").unwrap();

    // A data dir whose manifest is garbage is a typed recovery error.
    let scratch = ScratchDir::new("recovery-garbage");
    let dir = scratch.path().join("data");
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join("MANIFEST"), b"not a manifest\n").unwrap();
    match Service::with_persistence(ServiceConfig::default(), &dir) {
        Err(ServiceError::Persistence(msg)) => {
            assert!(msg.contains("manifest"), "unhelpful message: {msg}")
        }
        other => panic!("expected a Persistence error, got {other:?}"),
    }
}

//! Property-based tests (proptest) for the core invariants the paper
//! proves: monotonicity (Lemma 3.1), keynode/community bijection
//! (Lemma 3.4), correctness of the top-k prefix rule (Theorem 3.1), the
//! accessed-size bound behind instance optimality (Lemma 3.8), and
//! structural integrity of the community forest.

use ic_graph::generators::{assemble, gnm, WeightKind};
use ic_graph::{Prefix, WeightedGraph};
use influential_communities::search::community::verify;
use influential_communities::search::query::{AlgorithmId, Selection};
use influential_communities::search::{count, naive, progressive, TopKQuery};

/// Forced-LocalSearch query: these properties are about Algorithm 1's
/// access pattern, so auto-selection must not reroute them.
fn ls_query(gamma: u32, k: usize) -> TopKQuery {
    TopKQuery::new(gamma)
        .k(k)
        .algorithm(Selection::Forced(AlgorithmId::LocalSearch))
}
use proptest::prelude::*;

/// Strategy: a random weighted graph described by (n, density, seed).
fn graph_params() -> impl Strategy<Value = (usize, usize, u64)> {
    (8usize..48, 1usize..5, 0u64..10_000)
}

fn make_graph(n: usize, density: usize, seed: u64) -> WeightedGraph {
    let weights = if seed.is_multiple_of(2) {
        WeightKind::Uniform(seed.wrapping_mul(31))
    } else {
        WeightKind::PageRank
    };
    assemble(n, &gnm(n, n * density, seed), weights)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 3.1: the number of communities in G≥τ is non-decreasing as τ
    /// decreases (the prefix grows).
    #[test]
    fn count_monotone_in_prefix((n, d, seed) in graph_params(), gamma in 1u32..5) {
        let g = make_graph(n, d, seed);
        let mut prev = 0usize;
        for t in 0..=g.n() {
            let c = count::count_ic(&Prefix::with_len(&g, t), gamma);
            prop_assert!(c >= prev, "count dropped at t={t}: {prev} -> {c}");
            prev = c;
        }
    }

    /// Lemma 3.4 / Theorem 3.2: CountIC equals the number of distinct
    /// influence values among all communities (keynode bijection).
    #[test]
    fn keynode_bijection((n, d, seed) in graph_params(), gamma in 1u32..5) {
        let g = make_graph(n, d, seed);
        let reference = naive::all_communities(&g, gamma);
        let counted = count::count_ic(&Prefix::with_len(&g, g.n()), gamma);
        prop_assert_eq!(counted, reference.len());
        // keynodes are pairwise distinct (Lemma 3.3, with input ties
        // resolved by the deterministic rank order)
        let mut keys: Vec<u32> = reference.iter().map(|c| c.keynode).collect();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), counted);
    }

    /// Theorem 3.1 end-to-end: LocalSearch equals the reference for every
    /// (γ, k), and each output satisfies Definition 2.2.
    #[test]
    fn local_search_correct((n, d, seed) in graph_params(), gamma in 1u32..5, k in 1usize..12) {
        let g = make_graph(n, d, seed);
        let mut expected = naive::all_communities(&g, gamma);
        expected.truncate(k);
        let got = ls_query(gamma, k).run(&g).unwrap().communities;
        prop_assert_eq!(got.len(), expected.len());
        for (a, b) in got.iter().zip(&expected) {
            prop_assert_eq!(a.keynode, b.keynode);
            prop_assert_eq!(&a.members, &b.members);
            prop_assert!(verify::is_influential_community(&g, &a.members, gamma));
        }
    }

    /// Lemma 3.8: the subgraph LocalSearch accesses is at most ~2δ times
    /// the smallest sufficient prefix G≥τ* (when one exists).
    #[test]
    fn accessed_size_bound((n, d, seed) in graph_params(), gamma in 1u32..4, k in 1usize..8) {
        let g = make_graph(n, d, seed);
        let total = count::count_ic(&Prefix::with_len(&g, g.n()), gamma);
        prop_assume!(total >= k); // τ* must exist
        // find size(G≥τ*): smallest prefix with ≥ k communities
        let mut size_star = g.size();
        for t in 0..=g.n() {
            let p = Prefix::with_len(&g, t);
            if count::count_ic(&p, gamma) >= k {
                size_star = p.size();
                break;
            }
        }
        let res = ls_query(gamma, k).run(&g).unwrap();
        let delta = 2.0;
        let bound = (2.0 * delta * size_star as f64 + 2.0).max(size_star as f64);
        prop_assert!(
            (res.stats.final_prefix_size as f64) <= bound,
            "accessed {} exceeds 2δ·size* = {} (size*={})",
            res.stats.final_prefix_size, bound, size_star
        );
    }

    /// Forest integrity: children have strictly higher influence and their
    /// member sets nest inside the parent's.
    #[test]
    fn forest_nesting((n, d, seed) in graph_params(), gamma in 1u32..5) {
        let g = make_graph(n, d, seed);
        let res = ls_query(gamma, usize::MAX / 4).run(&g).unwrap();
        let forest = &res.forest;
        for i in 0..forest.len() {
            let members = forest.members(i);
            let mset: std::collections::HashSet<u32> = members.iter().copied().collect();
            for &c in forest.children(i) {
                // strictly higher-ranked keynode; influence can only tie
                // under tied input weights (rank order breaks ties)
                prop_assert!(forest.keynode(c as usize) < forest.keynode(i));
                prop_assert!(forest.influence(c as usize) >= forest.influence(i));
                for m in forest.members(c as usize) {
                    prop_assert!(mset.contains(&m), "child member escapes parent");
                }
            }
            // keynode is the minimum-weight member = maximum rank
            prop_assert_eq!(*members.iter().max().unwrap(), forest.keynode(i));
        }
    }

    /// Progressive and batch results coincide for every prefix of the
    /// stream.
    #[test]
    fn progressive_equals_batch((n, d, seed) in graph_params(), gamma in 1u32..5) {
        let g = make_graph(n, d, seed);
        let all_batch = naive::all_communities(&g, gamma);
        let all_stream: Vec<_> = progressive::ProgressiveSearch::new(&g, gamma).collect();
        prop_assert_eq!(all_stream.len(), all_batch.len());
        for (a, b) in all_stream.iter().zip(&all_batch) {
            prop_assert_eq!(&a.members, &b.members);
        }
    }

    /// Weight perturbation sanity: scaling all weights by a positive
    /// constant never changes the community structure (only influences).
    #[test]
    fn scale_invariance((n, d, seed) in graph_params(), gamma in 1u32..4, scale in 1u32..1000) {
        let g = make_graph(n, d, seed);
        let mut b = ic_graph::GraphBuilder::new();
        for r in 0..g.n() as u32 {
            b.set_weight(g.external_id(r), g.weight(r) * scale as f64);
            b.add_vertex(g.external_id(r));
        }
        for (a, bb) in g.edges() {
            b.add_edge(g.external_id(a), g.external_id(bb));
        }
        let g2 = b.build().unwrap();
        let r1 = ls_query(gamma, 5).run(&g).unwrap().communities;
        let r2 = ls_query(gamma, 5).run(&g2).unwrap().communities;
        prop_assert_eq!(r1.len(), r2.len());
        for (x, y) in r1.iter().zip(&r2) {
            let mx: Vec<u64> = x.external_members(&g);
            let my: Vec<u64> = y.external_members(&g2);
            prop_assert_eq!(mx, my);
        }
    }
}

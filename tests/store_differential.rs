//! Differential test for the storage-backend seam: a file-backed
//! `.icsr` store must be *indistinguishable* from the in-memory CSR it
//! was saved from — same communities, in the same order, with the same
//! members — for every core-family algorithm in the registry.
//!
//! The grid crosses several graphs (the paper's running example plus the
//! two synthetic families the serving suite uses) with γ ∈ {1..4} and
//! k ∈ {1, 3, 8, 64}. For each cell the in-memory answer of every
//! core-family [`AlgorithmId`] is compared against both semi-external
//! executors running on the file-backed store; the file-backed run must
//! also actually touch the disk (nonzero I/O counters in its
//! [`SearchStats`]) — otherwise the test would pass vacuously with a
//! memory store in a trench coat.
//!
//! A service-level case closes the loop the protocol exposes: `SAVE`
//! then `LOADX` a graph, and the planner must route every auto-mode
//! query on the file-backed name to a semi-external executor (visible
//! through EXPLAIN) while returning bit-identical community lists.

use influential_communities::graph::generators::{assemble, barabasi_albert, gnm, WeightKind};
use influential_communities::graph::paper::figure3;
use influential_communities::graph::scratch::ScratchDir;
use influential_communities::graph::{save_icsr, FileCsr, GraphStore, StorageKind, WeightedGraph};
use influential_communities::search::query::{AlgorithmId, AnswerFamily};
use influential_communities::search::TopKQuery;
use influential_communities::service::{Mode, Query, Service};
use std::sync::Arc;

const GAMMAS: [u32; 4] = [1, 2, 3, 4];
const KS: [usize; 4] = [1, 3, 8, 64];

fn graphs() -> Vec<(&'static str, WeightedGraph)> {
    vec![
        ("figure3", figure3()),
        (
            "gnm",
            assemble(300, &gnm(300, 1200, 7), WeightKind::Uniform(7)),
        ),
        (
            "ba",
            assemble(250, &barabasi_albert(250, 4, 11), WeightKind::PageRank),
        ),
    ]
}

/// Every registered algorithm answering the core (Definition 2.2)
/// problem — the truss family answers a different question and has no
/// semi-external twin to agree with.
fn core_algorithms() -> Vec<AlgorithmId> {
    AlgorithmId::ALL
        .into_iter()
        .filter(|a| a.family() == AnswerFamily::Core)
        .collect()
}

#[test]
fn file_backed_store_matches_memory_for_every_core_algorithm() {
    let scratch = ScratchDir::new("store-differential");
    for (name, graph) in graphs() {
        let path = scratch.path().join(format!("{name}.icsr"));
        save_icsr(&graph, &path).expect("save_icsr");
        let file = GraphStore::File(Arc::new(FileCsr::open(&path).expect("open icsr")));
        let memory = GraphStore::Memory(Arc::new(graph));

        for gamma in GAMMAS {
            for k in KS {
                let q = TopKQuery::new(gamma).k(k);
                // Reference answer: plain in-memory LocalSearch.
                let reference = AlgorithmId::LocalSearch
                    .resolve()
                    .run_store(&memory, &q)
                    .expect("memory run");

                for algo in core_algorithms() {
                    // Every core algorithm agrees on the memory store...
                    let mem = algo
                        .resolve()
                        .run_store(&memory, &q)
                        .expect("memory stores serve every algorithm");
                    assert_eq!(
                        mem.communities, reference.communities,
                        "{name}: γ={gamma} k={k}: {algo:?} disagrees in memory"
                    );
                    // ...and its file-backed twin (the semi-external
                    // executors are the only ones that serve file
                    // stores) must reproduce it exactly.
                    if matches!(algo, AlgorithmId::LocalSearchSE | AlgorithmId::OnlineAllSE) {
                        let disk = algo
                            .resolve()
                            .run_store(&file, &q)
                            .expect("file-backed run");
                        assert_eq!(
                            disk.communities, reference.communities,
                            "{name}: γ={gamma} k={k}: {algo:?} disagrees on disk"
                        );
                        assert!(
                            disk.stats.bytes_read > 0 && disk.stats.read_ops > 0,
                            "{name}: γ={gamma} k={k}: {algo:?} reported no I/O \
                             on a file-backed store"
                        );
                        assert_eq!(mem.stats.bytes_read, 0, "memory runs must not count I/O");
                    }
                }
            }
        }
    }
}

#[test]
fn service_save_loadx_differential_with_storage_aware_planning() {
    let scratch = ScratchDir::new("store-differential-svc");
    let svc = Service::with_defaults();
    for (name, graph) in graphs() {
        svc.register(name, graph);
        let path = scratch.path().join(format!("{name}.icsr"));
        let disk_name = format!("{name}-disk");
        svc.save_store(name, path.to_str().unwrap()).expect("SAVE");
        let entry = svc
            .register_file(&disk_name, path.to_str().unwrap(), None)
            .expect("LOADX");
        assert_eq!(entry.store.kind(), StorageKind::File);

        for gamma in GAMMAS {
            for k in KS {
                let mem_q = Query::new(name, gamma, k);
                let disk_q = Query::new(&disk_name, gamma, k);
                let mem_plan = svc.explain(&mem_q).expect("explain mem");
                let disk_plan = svc.explain(&disk_q).expect("explain disk");
                assert_eq!(mem_plan.storage, StorageKind::Memory);
                assert_eq!(disk_plan.storage, StorageKind::File);
                assert!(
                    matches!(
                        disk_plan.algorithm,
                        AlgorithmId::LocalSearchSE | AlgorithmId::OnlineAllSE
                    ),
                    "{disk_name}: γ={gamma} k={k}: auto planned {:?} for a file store",
                    disk_plan.algorithm
                );
                assert!(
                    disk_plan.est_bytes > 0,
                    "file-backed plans must estimate their I/O"
                );

                let mem = svc.query(mem_q).expect("memory query");
                let disk = svc.query(disk_q).expect("file-backed query");
                assert_eq!(
                    mem.communities, disk.communities,
                    "{disk_name}: γ={gamma} k={k}: answers diverge across backends"
                );
            }
        }

        // Forcing the streaming executor must agree too (it reads the
        // whole edge file rather than the answer prefix).
        let forced = svc
            .query(Query::new(&disk_name, 3, 4).with_mode(Mode::Forced(AlgorithmId::OnlineAllSE)))
            .expect("forced online_all_se");
        let reference = svc.query(Query::new(name, 3, 4)).expect("memory reference");
        assert_eq!(forced.communities, reference.communities);
    }
}

//! End-to-end observability tests: histogram quantile accuracy against
//! an exact sorted reference (proptest), concurrent recording + merge,
//! the Prometheus exposition's line shape, `EXPLAIN ANALYZE` stage
//! tiling against end-to-end latency, the slow-query log, and `STATS`
//! row determinism.

use std::sync::Arc;
use std::time::Duration;

use influential_communities::obs::{Histogram, QueryClass, LATENCY_LE_BOUNDS_NS, SUB_BUCKETS};
use influential_communities::service::protocol::handle_line;
use influential_communities::service::{Query, Service, ServiceConfig};
use proptest::prelude::*;

fn svc_with(threshold: Duration) -> Arc<Service> {
    let svc = Service::new(ServiceConfig {
        workers: 2,
        cache_capacity: 16,
        cache_shards: 2,
        slowlog_threshold: threshold,
        ..ServiceConfig::default()
    });
    svc.register("fig3", ic_graph::paper::figure3());
    svc
}

/// Exact quantile of a sorted sample, using the same nearest-rank rule
/// the histogram implements: the smallest value with cumulative count
/// ≥ ⌈q·n⌉.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// SplitMix64: deterministic value streams for the property test (the
/// vendored proptest draws only scalar parameters).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The log-linear histogram's quantiles match the exact sorted
    /// reference to within one sub-bucket of relative error: the
    /// reported value is an upper bound of the exact value's bucket, so
    /// `exact ≤ reported ≤ exact + exact/SUB_BUCKETS + 1`.
    #[test]
    fn quantiles_match_exact_reference_within_bucket_error(
        n in 1usize..400,
        seed in 0u64..1_000_000,
        // spread exponent: values span [0, 2^shift) — from tight
        // sub-microsecond clusters to multi-minute outliers
        shift in 4u32..44,
        q_mille in 0u64..1001,
    ) {
        let mut state = seed;
        let values: Vec<u64> = (0..n).map(|_| splitmix(&mut state) >> (64 - shift)).collect();
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.max(), *sorted.last().unwrap());
        prop_assert_eq!(snap.min(), sorted[0]);
        for q in [q_mille as f64 / 1000.0, 0.5, 0.9, 0.99, 0.999] {
            let exact = exact_quantile(&sorted, q);
            let reported = snap.quantile(q);
            prop_assert!(reported >= exact, "q={q}: reported {reported} < exact {exact}");
            let slack = exact / SUB_BUCKETS as u64 + 1;
            prop_assert!(
                reported <= exact + slack,
                "q={q}: reported {reported} > exact {exact} + slack {slack}"
            );
        }
    }
}

/// Concurrent recorders into per-thread histograms, merged at the end,
/// agree exactly with one histogram fed every value — merge is a
/// bucket-wise sum, so no ordering can change the result.
#[test]
fn concurrent_recorders_merge_to_the_single_recorder_result() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 10_000;
    let merged = Histogram::new();
    let reference = Histogram::new();
    let shards: Vec<Histogram> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                s.spawn(move || {
                    let h = Histogram::new();
                    // deterministic per-thread stream with a wide spread
                    for i in 0..PER_THREAD {
                        h.record((t * PER_THREAD + i).wrapping_mul(2_654_435_761) % 1_000_000_007);
                    }
                    h
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for shard in &shards {
        merged.merge(shard);
    }
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            reference.record((t * PER_THREAD + i).wrapping_mul(2_654_435_761) % 1_000_000_007);
        }
    }
    let (m, r) = (merged.snapshot(), reference.snapshot());
    assert_eq!(m.count(), THREADS * PER_THREAD);
    assert_eq!(m.sum(), r.sum());
    for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
        assert_eq!(m.quantile(q), r.quantile(q), "q={q}");
    }
    for bound in LATENCY_LE_BOUNDS_NS {
        assert_eq!(m.count_le(bound), r.count_le(bound), "le={bound}");
    }
}

/// Every line of the `METRICS` exposition is well-formed Prometheus
/// text: a `# HELP`/`# TYPE` comment or `name{labels} value` where the
/// value parses as a finite number. The per-class histograms carry
/// cumulative buckets ending at `+Inf` = `_count`.
#[test]
fn metrics_exposition_is_well_formed_prometheus_text() {
    let svc = svc_with(Duration::from_millis(10));
    svc.query(Query::new("fig3", 3, 4)).unwrap();
    svc.query(Query::new("fig3", 3, 4)).unwrap(); // cached
    svc.query(Query::new("fig3", 3, 2)).unwrap(); // prefix-served
    let body = svc.metrics_text();
    assert!(!body.is_empty());
    let mut inf_buckets = 0;
    for line in body.lines() {
        if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            continue;
        }
        // name{labels} value — split on the last space; the metric name
        // is ASCII [a-zA-Z0-9_:] up to the optional label block
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("bad line {line:?}"));
        let name = series.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in {line:?}"
        );
        assert!(name.starts_with("ic_"), "unprefixed metric in {line:?}");
        if let Some(rest) = series.strip_prefix(name) {
            if !rest.is_empty() {
                assert!(
                    rest.starts_with('{') && rest.ends_with('}'),
                    "bad labels in {line:?}"
                );
            }
        }
        let v: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("bad value in {line:?}"));
        assert!(v.is_finite(), "{line:?}");
        if series.contains("le=\"+Inf\"") {
            inf_buckets += 1;
        }
    }
    assert!(inf_buckets >= 2, "per-class histograms render +Inf buckets");

    // the counters agree with STATS' view of the same traffic
    assert!(body.contains("ic_queries_total 3"), "{body}");
    // prefix-served answers count as hits too: one exact + one sliced
    assert!(body.contains("ic_cache_hits_total 2"), "{body}");
    assert!(body.contains("ic_prefix_served_total 1"), "{body}");
    // each answered class recorded exactly one end-to-end latency
    for class in ["cold", "cached", "prefix_served"] {
        let needle = format!("ic_query_latency_ns_count{{class=\"{class}\"}} 1");
        assert!(body.contains(&needle), "missing {needle:?} in {body}");
    }
    // quantile gauges sit between the class's recorded min and max:
    // one sample per class, so p50 = p99 = that sample's bucket bound
    for class in [QueryClass::Cold, QueryClass::Cached] {
        let snap = svc.metrics().class_snapshot(class);
        assert_eq!(snap.quantile(0.5), snap.quantile(0.99));
        assert!(snap.quantile(0.5) >= snap.min());
        assert!(snap.quantile(0.5) <= snap.max() + snap.max() / SUB_BUCKETS as u64 + 1);
    }
}

/// `EXPLAIN ANALYZE` reports measured stage timings that tile the
/// end-to-end trace exactly (sum == total, well within the 10% bound),
/// and the trace total is at least the execution latency the response
/// itself reports.
#[test]
fn explain_analyze_stages_tile_the_end_to_end_latency() {
    let svc = svc_with(Duration::from_millis(10));
    let (resp, trace) = svc.query_traced(Query::new("fig3", 3, 4)).unwrap();
    assert_eq!(
        trace.stages_total_ns(),
        trace.total_ns(),
        "stage timings tile the total exactly"
    );
    assert!(trace.total_ns() > 0);
    assert!(
        trace.total_ns() >= resp.latency.as_nanos() as u64,
        "trace spans queue+plan+serialize around the measured execution: \
         total={} latency={}",
        trace.total_ns(),
        resp.latency.as_nanos()
    );
    // end-to-end wall clock measured around the call bounds the trace
    let start = std::time::Instant::now();
    let (_, warm) = svc.query_traced(Query::new("fig3", 3, 4)).unwrap();
    let wall = start.elapsed().as_nanos() as u64;
    assert_eq!(warm.stages_total_ns(), warm.total_ns());
    assert!(
        warm.total_ns() <= wall,
        "trace {} > wall {}",
        warm.total_ns(),
        wall
    );
}

/// The slow-query ring retains full traces once the threshold is
/// crossed, and each retained trace tiles exactly.
#[test]
fn slowlog_retains_tiling_traces() {
    let svc = svc_with(Duration::ZERO); // everything is slow
    svc.query(Query::new("fig3", 3, 4)).unwrap();
    svc.query(Query::new("fig3", 3, 4)).unwrap();
    let log = svc.slowlog(10);
    assert_eq!(log.len(), 2);
    assert_eq!(log[0].class, QueryClass::Cached, "newest first");
    assert_eq!(log[1].class, QueryClass::Cold);
    for entry in &log {
        assert_eq!(entry.trace.stages_total_ns(), entry.trace.total_ns());
        assert!(entry.trace.total_ns() > 0);
    }
    // a high threshold retains nothing, but histograms still record
    let quiet = svc_with(Duration::from_secs(3600));
    quiet.query(Query::new("fig3", 3, 4)).unwrap();
    assert!(quiet.slowlog(10).is_empty());
    assert_eq!(quiet.metrics().class_snapshot(QueryClass::Cold).count(), 1);
}

/// `STATS` store rows and `GRAPHS` listings are sorted by name, so two
/// identical calls render byte-identical row ordering regardless of
/// registration order.
#[test]
fn stats_rows_are_deterministically_ordered() {
    let svc = svc_with(Duration::from_millis(10));
    // register in anti-alphabetical order
    for name in ["zeta", "mid", "alpha"] {
        handle_line(&svc, &format!("GEN {name} gnm 30 60 7"));
    }
    let rows = |reply: &str| -> Vec<String> {
        reply
            .lines()
            .filter(|l| l.starts_with("S ") || l.starts_with("G "))
            .map(String::from)
            .collect()
    };
    let stats = handle_line(&svc, "STATS");
    let names: Vec<&str> = stats
        .lines()
        .filter_map(|l| l.strip_prefix("S graph="))
        .map(|l| l.split_whitespace().next().unwrap())
        .collect();
    assert_eq!(names, ["alpha", "fig3", "mid", "zeta"], "{stats}");
    assert_eq!(rows(&stats), rows(&handle_line(&svc, "STATS")));
    let graphs = handle_line(&svc, "GRAPHS");
    assert_eq!(rows(&graphs), rows(&handle_line(&svc, "GRAPHS")));
}

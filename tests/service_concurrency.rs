//! The serving subsystem under concurrent load (the PR's acceptance
//! test): many client threads issue a mixed workload — planner-dispatched
//! batch queries, forced-mode queries, and progressive sessions — against
//! multiple registered graphs, and every answer must match what a
//! single-threaded `local_search::top_k` says, with the cache visibly
//! absorbing repeats.

use std::collections::HashMap;
use std::sync::Arc;

use influential_communities::graph::generators::{assemble, barabasi_albert, gnm, WeightKind};
use influential_communities::search::local_search;
use influential_communities::search::Community;
use influential_communities::service::{Algorithm, Mode, Query, Service, ServiceConfig};

/// Reference answers computed single-threaded, keyed by (graph, γ, k).
type Reference = HashMap<(String, u32, usize), Vec<Community>>;

fn assert_matches(
    got: &[Community],
    reference: &Reference,
    graph: &str,
    gamma: u32,
    k: usize,
    context: &str,
) {
    let expected = &reference[&(graph.to_string(), gamma, k)];
    assert_eq!(got.len(), expected.len(), "{context}: count");
    for (a, b) in got.iter().zip(expected) {
        assert_eq!(a.keynode, b.keynode, "{context}: keynode");
        assert_eq!(a.members, b.members, "{context}: members");
        assert_eq!(a.influence, b.influence, "{context}: influence");
    }
}

#[test]
fn concurrent_mixed_workload_matches_single_threaded_search() {
    let svc = Service::new(ServiceConfig {
        workers: 4,
        cache_capacity: 128,
        cache_shards: 8,
    });
    let graphs = [
        (
            "gnm",
            assemble(180, &gnm(180, 700, 11), WeightKind::Uniform(42)),
        ),
        (
            "ba",
            assemble(200, &barabasi_albert(200, 4, 3), WeightKind::PageRank),
        ),
    ];
    let gammas = [2u32, 3, 4];
    let ks = [1usize, 3, 8, 250];

    // single-threaded ground truth for every combination in the workload
    let mut reference: Reference = HashMap::new();
    for (name, g) in &graphs {
        for &gamma in &gammas {
            for &k in &ks {
                reference.insert(
                    (name.to_string(), gamma, k),
                    local_search::top_k(g, gamma, k).communities,
                );
            }
        }
        svc.register(name, g.clone());
    }
    let reference = Arc::new(reference);

    // 8 threads × 13 batch queries = 104 concurrent queries, plus 8
    // progressive sessions pulled in parallel — every combination hit by
    // several threads so the cache must absorb repeats.
    const THREADS: usize = 8;
    const QUERIES_PER_THREAD: usize = 13;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                for q in 0..QUERIES_PER_THREAD {
                    let idx = t + q; // overlapping sequences force cache reuse
                    let (graph, _) = [("gnm", ()), ("ba", ())][idx % 2];
                    let gamma = [2u32, 3, 4][idx % 3];
                    let k = [1usize, 3, 8, 250][idx % 4];
                    // every fourth query pins an algorithm instead of
                    // letting the planner choose
                    let mode = match q % 4 {
                        1 => Mode::Force(Algorithm::Forward),
                        2 => Mode::Force(Algorithm::OnlineAll),
                        3 => Mode::Force(Algorithm::Progressive),
                        _ => Mode::Auto,
                    };
                    let resp = svc
                        .query(Query::new(graph, gamma, k).with_mode(mode))
                        .expect("query succeeds");
                    assert_matches(
                        &resp.communities,
                        &reference,
                        graph,
                        gamma,
                        k,
                        &format!("thread {t} query {q} ({graph}, γ={gamma}, k={k})"),
                    );
                }

                // one progressive session per thread, interleaved with the
                // other threads' batch queries
                let graph = ["gnm", "ba"][t % 2];
                let gamma = [2u32, 3][t % 2];
                let id = svc.open_session(graph, gamma).expect("session opens");
                let mut streamed = Vec::new();
                loop {
                    let batch = svc.session_next(id, 3).expect("session next");
                    if batch.is_empty() {
                        break;
                    }
                    streamed.extend(batch);
                    if streamed.len() >= 8 {
                        break; // a client that stops early — LS-P's point
                    }
                }
                svc.close_session(id).expect("session closes");
                let k = streamed.len().max(1);
                let truncated: Vec<Community> = streamed.into_iter().take(k).collect();
                if !truncated.is_empty() {
                    let full = &reference.get(&(graph.to_string(), gamma, 250));
                    let expected = &full.expect("combo covered")[..truncated.len()];
                    for (a, b) in truncated.iter().zip(expected) {
                        assert_eq!(a.members, b.members, "session thread {t}");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no worker panicked");
    }

    let stats = svc.stats();
    assert_eq!(stats.queries, (THREADS * QUERIES_PER_THREAD) as u64);
    assert!(stats.queries >= 100, "acceptance floor: ≥100 queries");
    assert!(
        stats.cache_hits > 0,
        "repeated combinations must hit the cache: {stats:?}"
    );
    assert!(stats.hit_rate() > 0.0);
    assert_eq!(stats.sessions_opened, THREADS as u64);
    assert_eq!(stats.sessions_closed, THREADS as u64);
    assert!(stats.communities_streamed > 0);
    // the mixed modes exercised every algorithm at least once
    for algo in Algorithm::ALL {
        assert!(
            stats.executions(algo) > 0,
            "{algo} never executed: {stats:?}"
        );
    }
}

#[test]
fn cache_is_coherent_across_graph_replacement() {
    let svc = Service::with_defaults();
    let a = assemble(60, &gnm(60, 200, 1), WeightKind::Uniform(1));
    let b = assemble(80, &gnm(80, 320, 2), WeightKind::Uniform(2));
    svc.register("g", a.clone());
    let before = svc.query(Query::new("g", 2, 3)).unwrap();
    assert_matches_direct(&before.communities, &a, 2, 3);
    // replacing the graph must invalidate its cached answers
    svc.register("g", b.clone());
    let after = svc.query(Query::new("g", 2, 3)).unwrap();
    assert!(!after.cached, "stale answer served after re-registration");
    assert_matches_direct(&after.communities, &b, 2, 3);
}

fn assert_matches_direct(
    got: &[Community],
    g: &influential_communities::graph::WeightedGraph,
    gamma: u32,
    k: usize,
) {
    let expected = local_search::top_k(g, gamma, k).communities;
    assert_eq!(got.len(), expected.len());
    for (x, y) in got.iter().zip(&expected) {
        assert_eq!(x.members, y.members);
    }
}

//! The serving subsystem under concurrent load (the PR's acceptance
//! test): many client threads issue a mixed workload — planner-dispatched
//! batch queries, forced-mode queries, and progressive sessions — against
//! multiple registered graphs, and every answer must match what a
//! single-threaded forced-LocalSearch `TopKQuery` says, with the cache visibly
//! absorbing repeats.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use influential_communities::dynamic::UpdateOp;
use influential_communities::graph::generators::{assemble, barabasi_albert, gnm, WeightKind};
use influential_communities::search::query::Selection;
use influential_communities::search::{Community, TopKQuery};
use influential_communities::service::{Algorithm, Mode, Query, Service, ServiceConfig};

/// The six interchangeable core-family algorithms (truss answers a
/// different family and is exercised separately by the service tests).
const CORE_ALGORITHMS: [Algorithm; 6] = [
    Algorithm::LocalSearch,
    Algorithm::Progressive,
    Algorithm::Forward,
    Algorithm::OnlineAll,
    Algorithm::Backward,
    Algorithm::Naive,
];

/// Single-threaded ground truth through the unified core API.
fn reference_top_k(
    g: &influential_communities::graph::WeightedGraph,
    gamma: u32,
    k: usize,
) -> Vec<Community> {
    TopKQuery::new(gamma)
        .k(k)
        .algorithm(Selection::Forced(Algorithm::LocalSearch))
        .run(g)
        .expect("valid query")
        .communities
}

/// Reference answers computed single-threaded, keyed by (graph, γ, k).
type Reference = HashMap<(String, u32, usize), Vec<Community>>;

fn assert_matches(
    got: &[Community],
    reference: &Reference,
    graph: &str,
    gamma: u32,
    k: usize,
    context: &str,
) {
    let expected = &reference[&(graph.to_string(), gamma, k)];
    assert_eq!(got.len(), expected.len(), "{context}: count");
    for (a, b) in got.iter().zip(expected) {
        assert_eq!(a.keynode, b.keynode, "{context}: keynode");
        assert_eq!(a.members, b.members, "{context}: members");
        assert_eq!(a.influence, b.influence, "{context}: influence");
    }
}

#[test]
fn concurrent_mixed_workload_matches_single_threaded_search() {
    let svc = Service::new(ServiceConfig {
        workers: 4,
        cache_capacity: 128,
        cache_shards: 8,
        ..ServiceConfig::default()
    });
    let graphs = [
        (
            "gnm",
            assemble(180, &gnm(180, 700, 11), WeightKind::Uniform(42)),
        ),
        (
            "ba",
            assemble(200, &barabasi_albert(200, 4, 3), WeightKind::PageRank),
        ),
    ];
    let gammas = [2u32, 3, 4];
    let ks = [1usize, 3, 8, 250];

    // single-threaded ground truth for every combination in the workload
    let mut reference: Reference = HashMap::new();
    for (name, g) in &graphs {
        for &gamma in &gammas {
            for &k in &ks {
                reference.insert((name.to_string(), gamma, k), reference_top_k(g, gamma, k));
            }
        }
        svc.register(name, g.clone());
    }
    let reference = Arc::new(reference);

    // 8 threads × 13 batch queries = 104 concurrent queries, plus 8
    // progressive sessions pulled in parallel — every combination hit by
    // several threads so the cache must absorb repeats.
    const THREADS: usize = 8;
    const QUERIES_PER_THREAD: usize = 13;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                for q in 0..QUERIES_PER_THREAD {
                    let idx = t + q; // overlapping sequences force cache reuse
                    let (graph, _) = [("gnm", ()), ("ba", ())][idx % 2];
                    let gamma = [2u32, 3, 4][idx % 3];
                    let k = [1usize, 3, 8, 250][idx % 4];
                    // every fourth query pins an algorithm instead of
                    // letting the planner choose
                    let mode = match q % 5 {
                        1 => Mode::Forced(Algorithm::Forward),
                        2 => Mode::Forced(Algorithm::OnlineAll),
                        3 => Mode::Forced(Algorithm::Progressive),
                        4 => Mode::Forced(Algorithm::Backward),
                        _ => Mode::Auto,
                    };
                    let resp = svc
                        .query(Query::new(graph, gamma, k).with_mode(mode))
                        .expect("query succeeds");
                    assert_matches(
                        &resp.communities,
                        &reference,
                        graph,
                        gamma,
                        k,
                        &format!("thread {t} query {q} ({graph}, γ={gamma}, k={k})"),
                    );
                }

                // one progressive session per thread, interleaved with the
                // other threads' batch queries
                let graph = ["gnm", "ba"][t % 2];
                let gamma = [2u32, 3][t % 2];
                let id = svc.open_session(graph, gamma).expect("session opens");
                let mut streamed = Vec::new();
                loop {
                    let batch = svc.session_next(id, 3).expect("session next");
                    if batch.is_empty() {
                        break;
                    }
                    streamed.extend(batch);
                    if streamed.len() >= 8 {
                        break; // a client that stops early — LS-P's point
                    }
                }
                svc.close_session(id).expect("session closes");
                let k = streamed.len().max(1);
                let truncated: Vec<Community> = streamed.into_iter().take(k).collect();
                if !truncated.is_empty() {
                    let full = &reference.get(&(graph.to_string(), gamma, 250));
                    let expected = &full.expect("combo covered")[..truncated.len()];
                    for (a, b) in truncated.iter().zip(expected) {
                        assert_eq!(a.members, b.members, "session thread {t}");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no worker panicked");
    }

    let stats = svc.stats();
    assert_eq!(stats.queries, (THREADS * QUERIES_PER_THREAD) as u64);
    assert!(stats.queries >= 100, "acceptance floor: ≥100 queries");
    assert!(
        stats.cache_hits > 0,
        "repeated combinations must hit the cache: {stats:?}"
    );
    assert!(stats.hit_rate() > 0.0);
    assert_eq!(stats.sessions_opened, THREADS as u64);
    assert_eq!(stats.sessions_closed, THREADS as u64);
    assert!(stats.communities_streamed > 0);

    // Every algorithm must execute at least once. The concurrent phase
    // cannot guarantee that by itself — mode is deliberately not part of
    // the cache key, so under some interleavings every forced-mode query
    // lands on a hit another algorithm populated. Drive one guaranteed
    // miss per algorithm (a fresh graph *name* per algorithm: with the
    // prefix-aware cache, no k against an already-queried lane is safe
    // from being served by slicing) and check the answers against the
    // single-threaded search while we're at it.
    for (i, algo) in CORE_ALGORITHMS.into_iter().enumerate() {
        let k = 11 + i;
        let name = format!("post-{algo}");
        svc.register(&name, graphs[0].1.clone());
        let resp = svc
            .query(Query::new(&name, 2, k).with_mode(Mode::Forced(algo)))
            .expect("post-pass query succeeds");
        assert!(!resp.cached, "{algo}: key must be fresh");
        assert!(!resp.coalesced, "{algo}: nothing to coalesce with");
        assert_eq!(resp.explain.algorithm, algo);
        assert!(resp.search_stats.is_some(), "{algo}: uniform stats");
        assert_matches_direct(&resp.communities, &graphs[0].1, 2, k);
    }
    let stats = svc.stats();
    for algo in CORE_ALGORITHMS {
        assert!(
            stats.executions(algo) > 0,
            "{algo} never executed: {stats:?}"
        );
    }
}

#[test]
fn cache_is_coherent_across_graph_replacement() {
    let svc = Service::with_defaults();
    let a = assemble(60, &gnm(60, 200, 1), WeightKind::Uniform(1));
    let b = assemble(80, &gnm(80, 320, 2), WeightKind::Uniform(2));
    svc.register("g", a.clone());
    let before = svc.query(Query::new("g", 2, 3)).unwrap();
    assert_matches_direct(&before.communities, &a, 2, 3);
    // replacing the graph must invalidate its cached answers
    svc.register("g", b.clone());
    let after = svc.query(Query::new("g", 2, 3)).unwrap();
    assert!(!after.cached, "stale answer served after re-registration");
    assert_matches_direct(&after.communities, &b, 2, 3);
}

fn assert_matches_direct(
    got: &[Community],
    g: &influential_communities::graph::WeightedGraph,
    gamma: u32,
    k: usize,
) {
    let expected = reference_top_k(g, gamma, k);
    assert_eq!(got.len(), expected.len());
    for (x, y) in got.iter().zip(&expected) {
        assert_eq!(x.members, y.members);
    }
}

/// The single-flight guarantee (this PR's acceptance test): 32 threads
/// fire the *same* cold query through `execute_inline` simultaneously,
/// and the search must run exactly once — one cache miss, every other
/// thread either coalesced onto the in-flight execution or (if it
/// arrived after the answer landed) served from the cache. The search is
/// made slow enough (forced OnlineAll on a 40k-edge graph) that under
/// any realistic scheduling all 31 non-leaders arrive while the leader
/// is still computing.
#[test]
fn thundering_herd_executes_the_search_exactly_once() {
    const THREADS: usize = 32;
    let g = assemble(
        10_000,
        &barabasi_albert(10_000, 4, 77),
        WeightKind::PageRank,
    );
    let svc = Service::new(ServiceConfig {
        workers: 4,
        cache_capacity: 64,
        cache_shards: 4,
        ..ServiceConfig::default()
    });
    svc.register("herd", g.clone());
    let reference = reference_top_k(&g, 2, 32);

    // raw threads through execute_inline (not the pool, whose fixed
    // width would serialize the herd and mask the race being tested)
    let start = Arc::new(std::sync::Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                start.wait();
                svc.execute_inline(
                    &Query::new("herd", 2, 32).with_mode(Mode::Forced(Algorithm::OnlineAll)),
                )
                .expect("query succeeds")
            })
        })
        .collect();
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // every thread got the full, correct answer
    let executed: Vec<_> = responses
        .iter()
        .filter(|r| !r.cached && !r.coalesced)
        .collect();
    for r in &responses {
        assert_eq!(r.communities.len(), reference.len());
        for (a, b) in r.communities.iter().zip(reference.iter()) {
            assert_eq!(a.members, b.members);
        }
    }
    // ...but only one of them computed it
    let stats = svc.stats();
    assert_eq!(stats.cache_misses, 1, "the herd executed more than once");
    assert_eq!(executed.len(), 1, "exactly one leader");
    assert_eq!(stats.queries, THREADS as u64);
    assert_eq!(
        stats.coalesced + stats.cache_hits,
        (THREADS - 1) as u64,
        "everyone else was coalesced or cache-served: {stats:?}"
    );
    assert!(
        stats.coalesced >= 1,
        "a slow search must coalesce at least some of a 32-thread herd"
    );
    assert_eq!(stats.executions(Algorithm::OnlineAll), 1);
}

/// `query_batch` answers must be indistinguishable from the same queries
/// issued one by one against a fresh service — while executing once per
/// `(graph, γ, family)` group instead of once per request.
#[test]
fn batched_answers_equal_individual_answers() {
    let g = assemble(180, &gnm(180, 700, 11), WeightKind::Uniform(42));
    let queries: Vec<Query> = [
        ("g", 2u32, 1usize),
        ("g", 2, 8),
        ("g", 2, 250),
        ("g", 3, 3),
        ("g", 3, 8),
        ("g", 4, 1),
        ("g", 2, 8), // exact duplicate rides along
    ]
    .into_iter()
    .map(|(name, gamma, k)| Query::new(name, gamma, k))
    .collect();

    let batched_svc = Service::with_defaults();
    batched_svc.register("g", g.clone());
    let batched = batched_svc.query_batch(&queries);

    let individual_svc = Service::with_defaults();
    individual_svc.register("g", g.clone());

    for (q, b) in queries.iter().zip(&batched) {
        let b = b.as_ref().expect("all queries valid");
        let individual = individual_svc.query(q.clone()).expect("query succeeds");
        assert_eq!(
            b.communities.len(),
            individual.communities.len(),
            "{q:?}: count"
        );
        for (x, y) in b.communities.iter().zip(individual.communities.iter()) {
            assert_eq!(x.keynode, y.keynode, "{q:?}");
            assert_eq!(x.members, y.members, "{q:?}");
            assert_eq!(x.influence, y.influence, "{q:?}");
        }
    }
    // 3 lanes (γ=2, γ=3, γ=4) → exactly 3 searches for 7 requests
    let stats = batched_svc.stats();
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.cache_misses, 3, "one search per group: {stats:?}");
    assert_eq!(stats.queries, queries.len() as u64);
}

/// The invalidation guarantee under *concurrent* load: while reader
/// threads hammer one graph name, the main thread replaces the graph
/// twice — once wholesale (`register`) and once through the dynamic
/// update path (`update` + `commit_updates`). Every answer must match one
/// of the three reference states, per-thread answers must only move
/// forward through those states, and any query issued after a swap
/// completed must see that swap: across a generation bump, a stale
/// answer is never served. (The pre-existing concurrency test asserted a
/// positive hit-rate but never exercised invalidation at all.)
#[test]
fn replace_graph_mid_flight_never_serves_stale_answers() {
    const GAMMA: u32 = 2;
    const K: usize = 3;
    let graph_a = assemble(60, &gnm(60, 200, 21), WeightKind::Uniform(5));
    let graph_b = assemble(90, &gnm(90, 360, 22), WeightKind::Uniform(6));

    let svc = Service::new(ServiceConfig {
        workers: 4,
        cache_capacity: 64,
        cache_shards: 4,
        ..ServiceConfig::default()
    });
    svc.register("g", graph_a.clone());

    // stage 0 = A, stage 1 = B, stage 2 = B with its top community's
    // keynode removed via the dynamic-update path (filled in below)
    let references: Arc<std::sync::Mutex<Vec<Vec<Community>>>> =
        Arc::new(std::sync::Mutex::new(vec![
            reference_top_k(&graph_a, GAMMA, K),
            reference_top_k(&graph_b, GAMMA, K),
        ]));
    let stage = Arc::new(AtomicUsize::new(0));

    const THREADS: usize = 6;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let references = Arc::clone(&references);
            let stage = Arc::clone(&stage);
            std::thread::spawn(move || {
                let mut floor = 0usize; // lowest stage this thread may still see
                let mut after_final_swap = 0usize;
                for q in 0..1_000_000 {
                    // keep querying until well past the last swap, so the
                    // reads genuinely interleave with both replacements
                    let issued_at = stage.load(Ordering::SeqCst);
                    if issued_at == 2 {
                        after_final_swap += 1;
                        if after_final_swap > 16 {
                            break;
                        }
                    }
                    assert!(q < 999_999, "swaps never observed");
                    let resp = svc.query(Query::new("g", GAMMA, K)).expect("query");
                    let refs = references.lock().unwrap();
                    let matched = refs.iter().enumerate().position(|(_, expected)| {
                        resp.communities.len() == expected.len()
                            && resp
                                .communities
                                .iter()
                                .zip(expected)
                                .all(|(a, b)| a.members == b.members)
                    });
                    drop(refs);
                    let matched = matched.unwrap_or_else(|| {
                        panic!("thread {t} query {q}: answer matches no reference state")
                    });
                    assert!(
                        matched >= issued_at,
                        "thread {t} query {q}: stale answer (stage {matched}) served \
                         after stage {issued_at} swap completed"
                    );
                    assert!(
                        matched >= floor,
                        "thread {t} query {q}: answer regressed from stage {floor} \
                         to stage {matched}"
                    );
                    floor = matched;
                }
            })
        })
        .collect();

    // swap 1: wholesale replacement A → B
    std::thread::sleep(std::time::Duration::from_millis(5));
    svc.register("g", graph_b.clone());
    stage.store(1, Ordering::SeqCst);

    // swap 2: dynamic-update replacement B → C (remove the top keynode).
    // C's expected answer is computed on a private DynamicGraph replica
    // and published to the reference table *before* the live swap, so a
    // reader can never observe an answer ahead of its reference.
    std::thread::sleep(std::time::Duration::from_millis(5));
    let keynode_ext = {
        let top = &references.lock().unwrap()[1][0];
        graph_b.external_id(top.keynode)
    };
    let ref_c = {
        let mut replica = influential_communities::dynamic::DynamicGraph::new(graph_b.clone());
        replica.remove_vertex(keynode_ext).expect("replica removal");
        reference_top_k(&replica.commit().graph, GAMMA, K)
    };
    {
        let mut refs = references.lock().unwrap();
        // each stage must be observably different from its predecessor,
        // or the stale checks would be vacuous
        for (i, j) in [(0usize, 1usize), (1, 2usize)] {
            let next = if j == 2 { &ref_c } else { &refs[j] };
            assert!(
                refs[i].len() != next.len()
                    || refs[i]
                        .iter()
                        .zip(next)
                        .any(|(a, b)| a.influence != b.influence),
                "stage {j} must be observably different from stage {i}"
            );
        }
        refs.push(ref_c);
    }
    svc.update("g", UpdateOp::RemoveVertex { v: keynode_ext })
        .expect("update accepted");
    let (_, receipt) = svc.commit_updates("g").expect("commit succeeds");
    assert_eq!(receipt.ops_applied, 1);
    stage.store(2, Ordering::SeqCst);

    for h in handles {
        h.join().expect("no reader panicked");
    }

    // after everything settled: the final answer is stage 2's, uncached
    // answers were actually recomputed (three generations existed)
    let final_resp = svc.query(Query::new("g", GAMMA, K)).unwrap();
    let refs = references.lock().unwrap();
    assert_eq!(final_resp.communities.len(), refs[2].len());
    for (a, b) in final_resp.communities.iter().zip(&refs[2]) {
        assert_eq!(a.members, b.members);
    }
    let stats = svc.stats();
    assert!(
        stats.cache_misses >= 3,
        "each generation must have computed at least once: {stats:?}"
    );
}

//! Keeps the examples honest: every example must compile, and the
//! examples exercised in the docs (`quickstart`, `progressive_stream`,
//! `service_demo`) must run to completion. Without this harness an API change can silently
//! rot `examples/` because `cargo test` alone never builds them.

use std::path::Path;
use std::process::Command;

fn cargo() -> Command {
    // Respect the exact cargo that invoked the test run (set by cargo for
    // all child processes), falling back to PATH lookup.
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let mut cmd = Command::new(cargo);
    cmd.current_dir(Path::new(env!("CARGO_MANIFEST_DIR")));
    cmd
}

fn run_ok(args: &[&str]) {
    let out = cargo().args(args).output().expect("cargo spawns");
    assert!(
        out.status.success(),
        "`cargo {}` failed:\n--- stdout ---\n{}\n--- stderr ---\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn all_examples_compile() {
    run_ok(&["build", "--examples", "--quiet"]);
}

#[test]
fn quickstart_runs_to_completion() {
    run_ok(&["run", "--quiet", "--example", "quickstart"]);
}

#[test]
fn service_demo_runs_to_completion() {
    run_ok(&["run", "--quiet", "--example", "service_demo"]);
}

#[test]
fn dynamic_updates_runs_to_completion() {
    run_ok(&["run", "--quiet", "--example", "dynamic_updates"]);
}

#[test]
fn progressive_stream_runs_to_completion() {
    // Release profile: the example synthesizes a scale-15 R-MAT graph and
    // runs PageRank over it, which is needlessly slow unoptimized.
    run_ok(&[
        "run",
        "--release",
        "--quiet",
        "--example",
        "progressive_stream",
    ]);
}

//! Public-API surface snapshot + shim lint gate.
//!
//! `api-surface.txt` pins the public item surface of the library crates
//! (facade, ic-graph, ic-core, ic-dynamic, ic-obs, ic-service): every `pub` item
//! declaration, extracted by a std-only scanner. CI diffs the file, so an
//! accidental surface change (a leaked helper, a renamed type, a new free
//! function) fails loudly. If a change is *intended*, regenerate with:
//!
//! ```sh
//! API_SURFACE_REGENERATE=1 cargo test --test api_surface
//! ```
//!
//! The second test is the shim lint gate: the unified query API
//! (`TopKQuery` + the `Algorithm` trait) is the one sanctioned entry
//! point. The six grandfathered `#[deprecated]` `top_k` shims were
//! deleted after their one-release grace period, so the allowlist is now
//! empty: *no* free `pub fn top_k` may exist anywhere — a divergent
//! entry point fails this test.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Library source roots whose public surface is pinned (the bench
/// harness and vendored stand-ins are internal and excluded).
const ROOTS: &[&str] = &[
    "src",
    "crates/graph/src",
    "crates/core/src",
    "crates/dynamic/src",
    "crates/obs/src",
    "crates/service/src",
    "crates/load/src",
    "crates/analysis/src",
];

/// Files allowed to declare a free `pub fn top_k`: none. The deprecated
/// one-release shims (local_search/progressive/forward/online_all/
/// backward/naive) were removed once their grace period ended; the slice
/// stays so a future intentional grandfathering is one edit, reviewed
/// here.
const TOP_K_SHIM_FILES: &[&str] = &[];

const KINDS: &[&str] = &[
    "pub fn ",
    "pub struct ",
    "pub enum ",
    "pub trait ",
    "pub const ",
    "pub type ",
    "pub mod ",
    "pub use ",
];

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("source dir readable") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Extracts `(<file> <kind> <name>)` lines for every public item
/// declared outside `#[cfg(test)]` items. A `#[cfg(test)]`-annotated
/// item is skipped by brace counting (not by truncating the file), so a
/// public item declared *after* a test module — or between two of them —
/// is still captured and still subject to the shim gate.
fn scan() -> Vec<String> {
    let mut items = Vec::new();
    for root in ROOTS {
        let mut files = Vec::new();
        rust_files(Path::new(root), &mut files);
        for file in files {
            let text = fs::read_to_string(&file).expect("source readable");
            let rel = file.to_string_lossy().replace('\\', "/");
            // depth of the brace-delimited item under #[cfg(test)];
            // None = not inside one
            let mut skip_depth: Option<i64> = None;
            let mut pending_cfg_test = false;
            for line in text.lines() {
                let t = line.trim_start();
                if let Some(depth) = skip_depth.as_mut() {
                    *depth += brace_delta(t);
                    if *depth <= 0 && (*depth < 0 || t.contains('}')) {
                        skip_depth = None;
                    }
                    continue;
                }
                if t == "#[cfg(test)]" {
                    pending_cfg_test = true;
                    continue;
                }
                if pending_cfg_test {
                    // the annotated item: brace-delimited (mod/fn) or a
                    // one-liner ending in `;` (use/attr) — skip it whole
                    if t.contains('{') {
                        let depth = brace_delta(t);
                        if depth > 0 {
                            skip_depth = Some(depth);
                        }
                        pending_cfg_test = false;
                        continue;
                    }
                    if t.ends_with(';') || t.is_empty() {
                        pending_cfg_test = false;
                    }
                    continue; // attributes/signature lines before the `{`
                }
                for kind in KINDS {
                    if let Some(rest) = t.strip_prefix(kind) {
                        let name: String = rest
                            .chars()
                            .take_while(|c| !" (<{;:=".contains(*c))
                            .collect();
                        if !name.is_empty() {
                            items.push(format!(
                                "{rel} {} {name}",
                                kind.trim_end().trim_start_matches("pub ")
                            ));
                        }
                    }
                }
            }
        }
    }
    items.sort();
    items.dedup();
    items
}

/// Net `{`/`}` balance of one line (string/char contents are not parsed;
/// rustfmt-formatted source never splits a brace into a literal in the
/// positions this scanner cares about).
fn brace_delta(line: &str) -> i64 {
    line.chars().fold(0i64, |d, c| match c {
        '{' => d + 1,
        '}' => d - 1,
        _ => d,
    })
}

#[test]
fn public_surface_matches_snapshot() {
    let mut rendered = String::from(
        "# Public API surface (regenerate: API_SURFACE_REGENERATE=1 cargo test --test api_surface)\n",
    );
    for item in scan() {
        writeln!(rendered, "{item}").unwrap();
    }
    let snapshot_path = Path::new("api-surface.txt");
    if std::env::var("API_SURFACE_REGENERATE").is_ok() {
        fs::write(snapshot_path, &rendered).expect("snapshot writable");
        return;
    }
    let pinned = fs::read_to_string(snapshot_path).expect(
        "api-surface.txt missing — run API_SURFACE_REGENERATE=1 cargo test --test api_surface",
    );
    assert!(
        pinned == rendered,
        "public API surface drifted from api-surface.txt.\n\
         If intended, regenerate with API_SURFACE_REGENERATE=1 and review the diff.\n\
         --- pinned ---\n{}\n--- current ---\n{}",
        diff_hint(&pinned, &rendered),
        diff_hint(&rendered, &pinned),
    );
}

/// Lines present in `a` but not in `b` (a tiny set-diff for the failure
/// message; full files would drown the signal).
fn diff_hint(a: &str, b: &str) -> String {
    let bset: std::collections::HashSet<&str> = b.lines().collect();
    a.lines()
        .filter(|l| !bset.contains(l))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn no_new_top_k_free_functions_outside_shim_modules() {
    let offenders: Vec<String> = scan()
        .into_iter()
        .filter(|item| item.ends_with(" fn top_k"))
        .filter(|item| {
            let file = item.split(' ').next().expect("file column");
            !TOP_K_SHIM_FILES.contains(&file)
        })
        .collect();
    assert!(
        offenders.is_empty(),
        "free `pub fn top_k` outside the grandfathered shim modules — new \
         entry points go through TopKQuery + the Algorithm trait instead:\n{}",
        offenders.join("\n")
    );
}

#[test]
fn shim_modules_still_declare_their_shims() {
    // the gate above would pass vacuously if an allowlisted file were
    // renamed; anchor the allowlist to reality so it is pruned when its
    // entries go (it was, when the six v1 shims were deleted)
    let surface = scan();
    for file in TOP_K_SHIM_FILES {
        assert!(
            surface.iter().any(|i| i == &format!("{file} fn top_k")),
            "{file} no longer declares `pub fn top_k` — remove it from \
             TOP_K_SHIM_FILES (and from api-surface.txt)"
        );
    }
}

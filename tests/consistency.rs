//! Cross-algorithm consistency: every production algorithm must return
//! exactly the same communities as the definition-level reference
//! implementation, across a grid of random graphs, weight assignments,
//! cohesiveness thresholds, and k values.

use ic_graph::generators::{assemble, barabasi_albert, gnm, planted_partition, WeightKind};
use ic_graph::WeightedGraph;
use influential_communities::search::{
    backward, forward, local_search, naive, online_all, progressive,
};

fn random_graphs() -> Vec<(String, WeightedGraph)> {
    let mut graphs = Vec::new();
    for seed in 0..4u64 {
        let n = 50 + (seed as usize) * 17;
        let m = n * (2 + seed as usize % 3);
        graphs.push((
            format!("gnm-{seed}"),
            assemble(n, &gnm(n, m, seed), WeightKind::Uniform(seed + 100)),
        ));
    }
    for seed in 0..3u64 {
        let n = 60;
        graphs.push((
            format!("ba-{seed}"),
            assemble(n, &barabasi_albert(n, 3, seed), WeightKind::PageRank),
        ));
    }
    graphs.push((
        "planted".into(),
        assemble(
            60,
            &planted_partition(4, 15, 0.6, 0.02, 9),
            WeightKind::Uniform(9),
        ),
    ));
    graphs.push((
        "degree-weighted".into(),
        assemble(50, &gnm(50, 200, 5), WeightKind::Degree),
    ));
    graphs
}

#[test]
fn all_algorithms_agree_with_reference() {
    for (name, g) in random_graphs() {
        for gamma in 1..=5u32 {
            let reference = naive::all_communities(&g, gamma);
            for &k in &[1usize, 2, 5, 16, usize::MAX / 2] {
                let expected: Vec<_> = reference.iter().take(k).collect();
                if expected.is_empty() {
                    // no communities at this γ: every algorithm must agree
                    assert!(local_search::top_k(&g, gamma, k).communities.is_empty());
                    assert!(online_all::top_k(&g, gamma, k).is_empty());
                    assert!(forward::top_k(&g, gamma, k).is_empty());
                    assert!(backward::top_k(&g, gamma, k).is_empty());
                    continue;
                }
                let ls = local_search::top_k(&g, gamma, k).communities;
                let oa = online_all::top_k(&g, gamma, k);
                let fw = forward::top_k(&g, gamma, k);
                let bw = backward::top_k(&g, gamma, k);
                let pg: Vec<_> = progressive::ProgressiveSearch::new(&g, gamma)
                    .take(k)
                    .collect();
                for (algo, got) in [
                    ("local", &ls),
                    ("onlineall", &oa),
                    ("forward", &fw),
                    ("backward", &bw),
                    ("progressive", &pg),
                ] {
                    assert_eq!(
                        got.len(),
                        expected.len(),
                        "{name} γ={gamma} k={k} {algo}: count"
                    );
                    for (a, b) in got.iter().zip(&expected) {
                        assert_eq!(
                            a.keynode, b.keynode,
                            "{name} γ={gamma} k={k} {algo}: keynode"
                        );
                        assert_eq!(
                            a.members, b.members,
                            "{name} γ={gamma} k={k} {algo}: members"
                        );
                        assert_eq!(a.influence, b.influence);
                    }
                }
            }
        }
    }
}

#[test]
fn progressive_stream_is_complete_and_ordered() {
    for (name, g) in random_graphs() {
        for gamma in 1..=4u32 {
            let reference = naive::all_communities(&g, gamma);
            let streamed: Vec<_> = progressive::ProgressiveSearch::new(&g, gamma).collect();
            assert_eq!(streamed.len(), reference.len(), "{name} γ={gamma}");
            for w in streamed.windows(2) {
                // decreasing influence; ties (e.g. degree weights) are
                // broken by the deterministic rank order, so keynode ranks
                // strictly increase
                assert!(
                    w[0].influence >= w[1].influence && w[0].keynode < w[1].keynode,
                    "{name} γ={gamma}: order"
                );
            }
            for (a, b) in streamed.iter().zip(&reference) {
                assert_eq!(a.members, b.members, "{name} γ={gamma}");
            }
        }
    }
}

#[test]
fn counting_strategies_and_deltas_are_interchangeable() {
    use influential_communities::search::local_search::{
        CountStrategy, LocalSearch, LocalSearchOptions,
    };
    for (name, g) in random_graphs().into_iter().take(4) {
        let baseline = local_search::top_k(&g, 3, 8).communities;
        for delta in [1.5f64, 3.0, 16.0] {
            for counting in [CountStrategy::CountIc, CountStrategy::OnlineAll] {
                let mut ls = LocalSearch::with_options(LocalSearchOptions { delta, counting });
                let got = ls.run(&g, 3, 8).communities;
                assert_eq!(got.len(), baseline.len(), "{name} δ={delta} {counting:?}");
                for (a, b) in got.iter().zip(&baseline) {
                    assert_eq!(a.members, b.members, "{name} δ={delta} {counting:?}");
                }
            }
        }
    }
}

//! Cross-algorithm consistency: every production algorithm must return
//! exactly the same communities as the definition-level reference
//! implementation, across a grid of random graphs, weight assignments,
//! cohesiveness thresholds, and k values.

use ic_graph::generators::{assemble, barabasi_albert, gnm, planted_partition, WeightKind};
use ic_graph::WeightedGraph;
use influential_communities::search::{
    backward, forward, local_search, naive, online_all, progressive,
};
use influential_communities::service::planner::PROGRESSIVE_K_CUTOFF;
use influential_communities::service::{plan, Algorithm, Mode, Query, Service, ServiceConfig};
use proptest::prelude::*;

fn random_graphs() -> Vec<(String, WeightedGraph)> {
    let mut graphs = Vec::new();
    for seed in 0..4u64 {
        let n = 50 + (seed as usize) * 17;
        let m = n * (2 + seed as usize % 3);
        graphs.push((
            format!("gnm-{seed}"),
            assemble(n, &gnm(n, m, seed), WeightKind::Uniform(seed + 100)),
        ));
    }
    for seed in 0..3u64 {
        let n = 60;
        graphs.push((
            format!("ba-{seed}"),
            assemble(n, &barabasi_albert(n, 3, seed), WeightKind::PageRank),
        ));
    }
    graphs.push((
        "planted".into(),
        assemble(
            60,
            &planted_partition(4, 15, 0.6, 0.02, 9),
            WeightKind::Uniform(9),
        ),
    ));
    graphs.push((
        "degree-weighted".into(),
        assemble(50, &gnm(50, 200, 5), WeightKind::Degree),
    ));
    graphs
}

#[test]
fn all_algorithms_agree_with_reference() {
    for (name, g) in random_graphs() {
        for gamma in 1..=5u32 {
            let reference = naive::all_communities(&g, gamma);
            for &k in &[1usize, 2, 5, 16, usize::MAX / 2] {
                let expected: Vec<_> = reference.iter().take(k).collect();
                if expected.is_empty() {
                    // no communities at this γ: every algorithm must agree
                    assert!(local_search::top_k(&g, gamma, k).communities.is_empty());
                    assert!(online_all::top_k(&g, gamma, k).is_empty());
                    assert!(forward::top_k(&g, gamma, k).is_empty());
                    assert!(backward::top_k(&g, gamma, k).is_empty());
                    continue;
                }
                let ls = local_search::top_k(&g, gamma, k).communities;
                let oa = online_all::top_k(&g, gamma, k);
                let fw = forward::top_k(&g, gamma, k);
                let bw = backward::top_k(&g, gamma, k);
                let pg: Vec<_> = progressive::ProgressiveSearch::new(&g, gamma)
                    .take(k)
                    .collect();
                for (algo, got) in [
                    ("local", &ls),
                    ("onlineall", &oa),
                    ("forward", &fw),
                    ("backward", &bw),
                    ("progressive", &pg),
                ] {
                    assert_eq!(
                        got.len(),
                        expected.len(),
                        "{name} γ={gamma} k={k} {algo}: count"
                    );
                    for (a, b) in got.iter().zip(&expected) {
                        assert_eq!(
                            a.keynode, b.keynode,
                            "{name} γ={gamma} k={k} {algo}: keynode"
                        );
                        assert_eq!(
                            a.members, b.members,
                            "{name} γ={gamma} k={k} {algo}: members"
                        );
                        assert_eq!(a.influence, b.influence);
                    }
                }
            }
        }
    }
}

#[test]
fn progressive_stream_is_complete_and_ordered() {
    for (name, g) in random_graphs() {
        for gamma in 1..=4u32 {
            let reference = naive::all_communities(&g, gamma);
            let streamed: Vec<_> = progressive::ProgressiveSearch::new(&g, gamma).collect();
            assert_eq!(streamed.len(), reference.len(), "{name} γ={gamma}");
            for w in streamed.windows(2) {
                // decreasing influence; ties (e.g. degree weights) are
                // broken by the deterministic rank order, so keynode ranks
                // strictly increase
                assert!(
                    w[0].influence >= w[1].influence && w[0].keynode < w[1].keynode,
                    "{name} γ={gamma}: order"
                );
            }
            for (a, b) in streamed.iter().zip(&reference) {
                assert_eq!(a.members, b.members, "{name} γ={gamma}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The serving layer must never change an answer: whatever algorithm
    /// the planner dispatches to — through every branch of the cost model
    /// and every explicit override — the service returns exactly the
    /// communities the definition-level reference produces.
    #[test]
    fn planner_dispatch_agrees_with_reference(
        (n, density, seed) in (16usize..48, 2usize..5, 0u64..10_000),
        gamma in 1u32..5,
    ) {
        let g = assemble(n, &gnm(n, n * density, seed), WeightKind::Uniform(seed ^ 0xC0FFEE));
        let svc = Service::new(ServiceConfig {
            workers: 1,
            cache_capacity: 64,
            cache_shards: 2,
        });
        let stats = svc.register("g", g.clone()).stats;

        // k values crafted to hit every Auto branch of the cost model
        // (n ≥ 16 and γ ≤ 4 make the small-k branches unambiguous):
        // γ > γmax → forward; k + γ ≥ n → online_all; k + γ ≥ n/2 →
        // forward; k ≤ cutoff → progressive; otherwise local_search.
        prop_assert_eq!(
            plan(&stats, stats.gamma_max + 1, 1, Mode::Auto).algorithm,
            Algorithm::Forward
        );
        // γ clamped to feasibility so the infeasible-γ rule (checked
        // above) cannot shadow the k-shaped branches
        let gamma_ok = gamma.clamp(1, stats.gamma_max.max(1));
        prop_assert_eq!(plan(&stats, gamma_ok, n, Mode::Auto).algorithm, Algorithm::OnlineAll);
        prop_assert_eq!(plan(&stats, gamma_ok, n / 2, Mode::Auto).algorithm, Algorithm::Forward);
        prop_assert_eq!(plan(&stats, gamma_ok, 1, Mode::Auto).algorithm, Algorithm::Progressive);
        prop_assert_eq!(
            plan(&stats, gamma_ok, PROGRESSIVE_K_CUTOFF + 1, Mode::Auto).algorithm,
            Algorithm::LocalSearch
        );

        let reference = naive::all_communities(&g, gamma);
        let ks = [1, PROGRESSIVE_K_CUTOFF + 1, n / 2, n];
        let modes = [
            ("auto", Mode::Auto),
            ("local", Mode::Force(Algorithm::LocalSearch)),
            ("progressive", Mode::Force(Algorithm::Progressive)),
            ("forward", Mode::Force(Algorithm::Forward)),
            ("online_all", Mode::Force(Algorithm::OnlineAll)),
        ];
        for &k in &ks {
            for &(label, mode) in &modes {
                // per-mode graph aliases keep the (graph, γ, k) cache key
                // distinct, so every mode actually executes its algorithm
                let name = format!("g-{label}");
                svc.register(&name, g.clone());
                let resp = svc
                    .execute_inline(&Query::new(name, gamma, k).with_mode(mode))
                    .expect("query succeeds");
                let expected: Vec<_> = reference.iter().take(k).collect();
                prop_assert_eq!(
                    resp.communities.len(),
                    expected.len(),
                    "γ={} k={} {}: count", gamma, k, label
                );
                for (a, b) in resp.communities.iter().zip(&expected) {
                    prop_assert_eq!(a.keynode, b.keynode, "γ={} k={} {}", gamma, k, label);
                    prop_assert_eq!(&a.members, &b.members, "γ={} k={} {}", gamma, k, label);
                }
            }
        }

        // the infeasible-γ branch also returns exactly what naive says
        let resp = svc
            .execute_inline(&Query::new("g", stats.gamma_max + 1, 2))
            .expect("query succeeds");
        prop_assert_eq!(resp.explain.algorithm, Algorithm::Forward);
        prop_assert!(resp.communities.is_empty());
    }
}

#[test]
fn counting_strategies_and_deltas_are_interchangeable() {
    use influential_communities::search::local_search::{
        CountStrategy, LocalSearch, LocalSearchOptions,
    };
    for (name, g) in random_graphs().into_iter().take(4) {
        let baseline = local_search::top_k(&g, 3, 8).communities;
        for delta in [1.5f64, 3.0, 16.0] {
            for counting in [CountStrategy::CountIc, CountStrategy::OnlineAll] {
                let mut ls = LocalSearch::with_options(LocalSearchOptions { delta, counting });
                let got = ls.run(&g, 3, 8).communities;
                assert_eq!(got.len(), baseline.len(), "{name} δ={delta} {counting:?}");
                for (a, b) in got.iter().zip(&baseline) {
                    assert_eq!(a.members, b.members, "{name} δ={delta} {counting:?}");
                }
            }
        }
    }
}

//! Cross-algorithm consistency: every production algorithm must return
//! exactly the same communities as the definition-level reference
//! implementation, across a grid of random graphs, weight assignments,
//! cohesiveness thresholds, and k values — and the unified query API
//! (`TopKQuery` + the `Algorithm` trait) must be a transparent veneer:
//! builder-dispatched results are identical to direct algorithm calls
//! for every algorithm variant.

use ic_graph::generators::{assemble, barabasi_albert, gnm, planted_partition, WeightKind};
use ic_graph::WeightedGraph;
use influential_communities::prelude::{AlgorithmId, Community, Selection, TopKQuery};
use influential_communities::search::local_search::{
    CountStrategy, LocalSearch, LocalSearchOptions,
};
use influential_communities::search::{naive, semi_external, truss, ProgressiveSearch};
use influential_communities::service::planner::PROGRESSIVE_K_CUTOFF;
use influential_communities::service::{plan, Algorithm, Mode, Query, Service, ServiceConfig};
use proptest::prelude::*;

fn random_graphs() -> Vec<(String, WeightedGraph)> {
    let mut graphs = Vec::new();
    for seed in 0..4u64 {
        let n = 50 + (seed as usize) * 17;
        let m = n * (2 + seed as usize % 3);
        graphs.push((
            format!("gnm-{seed}"),
            assemble(n, &gnm(n, m, seed), WeightKind::Uniform(seed + 100)),
        ));
    }
    for seed in 0..3u64 {
        let n = 60;
        graphs.push((
            format!("ba-{seed}"),
            assemble(n, &barabasi_albert(n, 3, seed), WeightKind::PageRank),
        ));
    }
    graphs.push((
        "planted".into(),
        assemble(
            60,
            &planted_partition(4, 15, 0.6, 0.02, 9),
            WeightKind::Uniform(9),
        ),
    ));
    graphs.push((
        "degree-weighted".into(),
        assemble(50, &gnm(50, 200, 5), WeightKind::Degree),
    ));
    graphs
}

/// Builder-dispatched communities for one forced algorithm.
fn via_builder(g: &WeightedGraph, id: AlgorithmId, gamma: u32, k: usize) -> Vec<Community> {
    TopKQuery::new(gamma)
        .k(k)
        .algorithm(Selection::Forced(id))
        .run(g)
        .expect("valid query")
        .communities
}

#[test]
fn all_algorithms_agree_with_reference() {
    let dispatchable = [
        AlgorithmId::LocalSearch,
        AlgorithmId::OnlineAll,
        AlgorithmId::Forward,
        AlgorithmId::Backward,
        AlgorithmId::Progressive,
    ];
    for (name, g) in random_graphs() {
        for gamma in 1..=5u32 {
            let reference = naive::all_communities(&g, gamma);
            for &k in &[1usize, 2, 5, 16, TopKQuery::MAX_K] {
                let expected: Vec<_> = reference.iter().take(k).collect();
                for id in dispatchable {
                    let got = via_builder(&g, id, gamma, k);
                    assert_eq!(
                        got.len(),
                        expected.len(),
                        "{name} γ={gamma} k={k} {id}: count"
                    );
                    for (a, b) in got.iter().zip(&expected) {
                        assert_eq!(a.keynode, b.keynode, "{name} γ={gamma} k={k} {id}: keynode");
                        assert_eq!(a.members, b.members, "{name} γ={gamma} k={k} {id}: members");
                        assert_eq!(a.influence, b.influence);
                    }
                }
            }
        }
    }
}

#[test]
fn progressive_stream_is_complete_and_ordered() {
    for (name, g) in random_graphs() {
        for gamma in 1..=4u32 {
            let reference = naive::all_communities(&g, gamma);
            // the v2 streaming surface: Auto stream == LocalSearch-P
            let streamed: Vec<_> = TopKQuery::new(gamma).stream(&g).expect("valid").collect();
            assert_eq!(streamed.len(), reference.len(), "{name} γ={gamma}");
            for w in streamed.windows(2) {
                // decreasing influence; ties (e.g. degree weights) are
                // broken by the deterministic rank order, so keynode ranks
                // strictly increase
                assert!(
                    w[0].influence >= w[1].influence && w[0].keynode < w[1].keynode,
                    "{name} γ={gamma}: order"
                );
            }
            for (a, b) in streamed.iter().zip(&reference) {
                assert_eq!(a.members, b.members, "{name} γ={gamma}");
            }
        }
    }
}

/// The streaming adapter must yield exactly the batch answer, in the
/// batch order, for *every* algorithm variant — batch and streaming
/// consumers share one vocabulary.
#[test]
fn stream_adapter_yields_batch_order_for_every_algorithm() {
    let (_, g) = &random_graphs()[0];
    for id in AlgorithmId::ALL {
        let gamma = if id == AlgorithmId::Truss { 3 } else { 2 };
        let q = TopKQuery::new(gamma).k(8).algorithm(Selection::Forced(id));
        let batch = q.run(g).expect("valid query").communities;
        let streamed: Vec<Community> = q.stream(g).expect("valid query").take(8).collect();
        assert_eq!(streamed.len(), batch.len().min(8), "{id}: count");
        for (i, (a, b)) in streamed.iter().zip(&batch).enumerate() {
            assert_eq!(a.keynode, b.keynode, "{id}: keynode at {i}");
            assert_eq!(a.members, b.members, "{id}: members at {i}");
        }
        // the adapter is live exactly for the progressive algorithm
        assert_eq!(
            q.stream(g).expect("valid query").is_live(),
            id == AlgorithmId::Progressive,
            "{id}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The serving layer must never change an answer: whatever algorithm
    /// the planner dispatches to — through every branch of the cost model
    /// and every explicit override — the service returns exactly the
    /// communities the definition-level reference produces.
    #[test]
    fn planner_dispatch_agrees_with_reference(
        (n, density, seed) in (16usize..48, 2usize..5, 0u64..10_000),
        gamma in 1u32..5,
    ) {
        let g = assemble(n, &gnm(n, n * density, seed), WeightKind::Uniform(seed ^ 0xC0FFEE));
        let svc = Service::new(ServiceConfig {
            workers: 1,
            cache_capacity: 64,
            cache_shards: 2,
            ..ServiceConfig::default()
        });
        let stats = svc.register("g", g.clone()).stats;

        // k values crafted to hit every Auto branch of the cost model
        // (n ≥ 16 and γ ≤ 4 make the small-k branches unambiguous):
        // γ > γmax → forward; k + γ ≥ n → online_all; k + γ ≥ n/2 →
        // forward; k ≤ cutoff → progressive; otherwise local_search.
        prop_assert_eq!(
            plan(&stats, stats.gamma_max + 1, 1, Mode::Auto).algorithm,
            Algorithm::Forward
        );
        // γ clamped to feasibility so the infeasible-γ rule (checked
        // above) cannot shadow the k-shaped branches
        let gamma_ok = gamma.clamp(1, stats.gamma_max.max(1));
        prop_assert_eq!(plan(&stats, gamma_ok, n, Mode::Auto).algorithm, Algorithm::OnlineAll);
        prop_assert_eq!(plan(&stats, gamma_ok, n / 2, Mode::Auto).algorithm, Algorithm::Forward);
        prop_assert_eq!(plan(&stats, gamma_ok, 1, Mode::Auto).algorithm, Algorithm::Progressive);
        prop_assert_eq!(
            plan(&stats, gamma_ok, PROGRESSIVE_K_CUTOFF + 1, Mode::Auto).algorithm,
            Algorithm::LocalSearch
        );

        let reference = naive::all_communities(&g, gamma);
        let ks = [1, PROGRESSIVE_K_CUTOFF + 1, n / 2, n];
        let modes = [
            ("auto", Mode::Auto),
            ("local", Mode::Forced(Algorithm::LocalSearch)),
            ("progressive", Mode::Forced(Algorithm::Progressive)),
            ("forward", Mode::Forced(Algorithm::Forward)),
            ("online_all", Mode::Forced(Algorithm::OnlineAll)),
            ("backward", Mode::Forced(Algorithm::Backward)),
            ("naive", Mode::Forced(Algorithm::Naive)),
        ];
        for &k in &ks {
            for &(label, mode) in &modes {
                // per-mode graph aliases keep the (graph, γ, k) cache key
                // distinct, so every mode actually executes its algorithm
                let name = format!("g-{label}");
                svc.register(&name, g.clone());
                let resp = svc
                    .execute_inline(&Query::new(name, gamma, k).with_mode(mode))
                    .expect("query succeeds");
                let expected: Vec<_> = reference.iter().take(k).collect();
                prop_assert_eq!(
                    resp.communities.len(),
                    expected.len(),
                    "γ={} k={} {}: count", gamma, k, label
                );
                for (a, b) in resp.communities.iter().zip(&expected) {
                    prop_assert_eq!(a.keynode, b.keynode, "γ={} k={} {}", gamma, k, label);
                    prop_assert_eq!(&a.members, &b.members, "γ={} k={} {}", gamma, k, label);
                }
                prop_assert!(
                    resp.cached || resp.search_stats.is_some(),
                    "misses report stats uniformly"
                );
            }
        }

        // the infeasible-γ branch also returns exactly what naive says
        let resp = svc
            .execute_inline(&Query::new("g", stats.gamma_max + 1, 2))
            .expect("query succeeds");
        prop_assert_eq!(resp.explain.algorithm, Algorithm::Forward);
        prop_assert!(resp.communities.is_empty());
    }

    /// The enumeration-order invariant the serving layer's prefix-aware
    /// cache and batch slicing rely on (§4, LocalSearch-P): for every
    /// core-family algorithm, `top_k(γ, k)` equals the first k entries
    /// of `top_k(γ, k′)` whenever k < k′. If any algorithm ever broke
    /// this, a sliced cache entry would silently serve a wrong answer —
    /// this test is the guard.
    #[test]
    fn topk_is_a_prefix_of_larger_topk(
        (n, density, seed) in (20usize..64, 2usize..5, 0u64..10_000),
        gamma in 1u32..5,
    ) {
        let g = assemble(n, &gnm(n, n * density, seed), WeightKind::Uniform(seed ^ 0xFACE));
        let core_family = [
            AlgorithmId::LocalSearch,
            AlgorithmId::Progressive,
            AlgorithmId::Forward,
            AlgorithmId::OnlineAll,
            AlgorithmId::Backward,
            AlgorithmId::Naive,
        ];
        for id in core_family {
            // k' grid includes exhausted enumerations (k' > #communities)
            let big_ks = [4usize, 9, n / 2 + 1, n + 10];
            for big_k in big_ks {
                let big = via_builder(&g, id, gamma, big_k);
                for k in [1usize, 2, 3, big_k / 2, big_k.saturating_sub(1), big_k] {
                    if k == 0 || k > big_k {
                        continue;
                    }
                    let small = via_builder(&g, id, gamma, k);
                    let expected = &big[..k.min(big.len())];
                    prop_assert_eq!(
                        small.len(), expected.len(),
                        "{} γ={} k={} k'={}: count", id, gamma, k, big_k
                    );
                    for (a, b) in small.iter().zip(expected) {
                        prop_assert_eq!(a.keynode, b.keynode, "{} γ={} k={} k'={}", id, gamma, k, big_k);
                        prop_assert_eq!(&a.members, &b.members, "{} γ={} k={} k'={}", id, gamma, k, big_k);
                        prop_assert_eq!(a.influence, b.influence, "{} γ={} k={} k'={}", id, gamma, k, big_k);
                    }
                }
            }
        }
    }

    /// The unified builder is a transparent veneer: for every algorithm
    /// variant × (γ, k) grid point, dispatching through
    /// `TopKQuery` + the `Algorithm` trait returns results identical to
    /// calling the concrete algorithm APIs directly.
    #[test]
    fn builder_dispatch_equals_direct_calls(
        (n, density, seed) in (20usize..60, 2usize..5, 0u64..10_000),
    ) {
        let g = assemble(n, &gnm(n, n * density, seed), WeightKind::Uniform(seed ^ 0x5EED));
        for gamma in [1u32, 2, 3, 4] {
            for k in [1usize, 4, 13, n] {
                for id in AlgorithmId::ALL {
                    if id == AlgorithmId::Truss && gamma < 2 {
                        // centrally rejected — direct call would assert
                        prop_assert!(
                            TopKQuery::new(gamma).k(k)
                                .algorithm(Selection::Forced(id))
                                .run(&g)
                                .is_err()
                        );
                        continue;
                    }
                    let got = via_builder(&g, id, gamma, k);
                    let direct: Vec<Community> = direct_call(&g, id, gamma, k);
                    prop_assert_eq!(
                        got.len(), direct.len(),
                        "γ={} k={} {}: count", gamma, k, id
                    );
                    for (a, b) in got.iter().zip(&direct) {
                        prop_assert_eq!(a.keynode, b.keynode, "γ={} k={} {}", gamma, k, id);
                        prop_assert_eq!(&a.members, &b.members, "γ={} k={} {}", gamma, k, id);
                        prop_assert_eq!(a.influence, b.influence, "γ={} k={} {}", gamma, k, id);
                    }
                }
            }
        }
    }
}

/// The pre-builder entry point of each algorithm: the power-tool types
/// and reference lists where they exist, the static-dispatch
/// `query::exec` executors elsewhere (the v1 free-function shims are
/// gone as of this release).
fn direct_call(g: &WeightedGraph, id: AlgorithmId, gamma: u32, k: usize) -> Vec<Community> {
    use influential_communities::search::query::{exec, Algorithm as _};
    let q = TopKQuery::new(gamma).k(k);
    match id {
        AlgorithmId::LocalSearch => LocalSearch::new().run(g, gamma, k).communities,
        AlgorithmId::Progressive => ProgressiveSearch::new(g, gamma).take(k).collect(),
        AlgorithmId::Forward => exec::Forward.run(g, &q).communities,
        AlgorithmId::OnlineAll => exec::OnlineAll.run(g, &q).communities,
        AlgorithmId::Backward => exec::Backward.run(g, &q).communities,
        AlgorithmId::Naive => {
            let mut all = naive::all_communities(g, gamma);
            all.truncate(k);
            all
        }
        AlgorithmId::Truss => truss::local_top_k(g, gamma, k).communities,
        AlgorithmId::LocalSearchSE => {
            semi_external::local_search_se_top_k(g, gamma, k)
                .expect("in-memory source cannot fail")
                .0
        }
        AlgorithmId::OnlineAllSE => {
            semi_external::online_all_se_top_k(g, gamma, k)
                .expect("in-memory source cannot fail")
                .0
        }
        other => unreachable!("unhandled algorithm {other}"),
    }
}

#[test]
fn counting_strategies_and_deltas_are_interchangeable() {
    for (name, g) in random_graphs().into_iter().take(4) {
        let baseline = TopKQuery::new(3).k(8).run(&g).expect("valid").communities;
        for delta in [1.5f64, 3.0, 16.0] {
            for counting in [CountStrategy::CountIc, CountStrategy::OnlineAll] {
                // through the reusable executor...
                let mut ls = LocalSearch::with_options(LocalSearchOptions { delta, counting });
                let got = ls.run(&g, 3, 8).communities;
                assert_eq!(got.len(), baseline.len(), "{name} δ={delta} {counting:?}");
                for (a, b) in got.iter().zip(&baseline) {
                    assert_eq!(a.members, b.members, "{name} δ={delta} {counting:?}");
                }
                // ...and through the builder's knobs
                let via = TopKQuery::new(3)
                    .k(8)
                    .delta(delta)
                    .count_strategy(counting)
                    .algorithm(Selection::Forced(AlgorithmId::LocalSearch))
                    .run(&g)
                    .expect("valid")
                    .communities;
                assert_eq!(via.len(), baseline.len(), "{name} δ={delta} {counting:?}");
                for (a, b) in via.iter().zip(&baseline) {
                    assert_eq!(a.members, b.members, "{name} δ={delta} {counting:?}");
                }
            }
        }
    }
}

/// Non-containment queries compose with both supporting frameworks and
/// agree with the naive NC reference.
#[test]
fn non_containment_builder_matches_reference() {
    for (name, g) in random_graphs().into_iter().take(3) {
        for gamma in 2..=4u32 {
            let reference = naive::all_noncontainment(&g, gamma);
            for id in [AlgorithmId::LocalSearch, AlgorithmId::Forward] {
                let got = TopKQuery::new(gamma)
                    .k(TopKQuery::MAX_K)
                    .non_containment(true)
                    .algorithm(Selection::Forced(id))
                    .run(&g)
                    .expect("valid")
                    .communities;
                assert_eq!(got.len(), reference.len(), "{name} γ={gamma} {id}");
                for (a, b) in got.iter().zip(&reference) {
                    assert_eq!(a.keynode, b.keynode, "{name} γ={gamma} {id}");
                    assert_eq!(a.members, b.members, "{name} γ={gamma} {id}");
                }
            }
        }
    }
}

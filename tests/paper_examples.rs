//! End-to-end replication of every worked example in the paper, exercised
//! through the public facade exactly as a user would.

use ic_graph::paper::{figure1, figure2a, figure3};
use influential_communities::prelude::*;
use influential_communities::search::{noncontainment, truss};

fn ids(g: &WeightedGraph, members: &[u32]) -> Vec<u64> {
    let mut v: Vec<u64> = members.iter().map(|&r| g.external_id(r)).collect();
    v.sort_unstable();
    v
}

/// The v2 batch entry point, as a user would call it.
fn top_k(g: &WeightedGraph, gamma: u32, k: usize) -> SearchResult {
    TopKQuery::new(gamma).k(k).run(g).expect("valid query")
}

#[test]
fn introduction_example_figure1() {
    // "consider the graph in Figure 1 ... γ = 3. There are two influential
    // γ-communities: the subgraphs induced by vertices {v0,v1,v5,v6} and
    // vertices {v3,v4,v7,v8,v9} that, respectively, have influence values
    // 10 and 13."
    let g = figure1();
    let res = top_k(&g, 3, 10);
    assert_eq!(res.communities.len(), 2);
    assert_eq!(ids(&g, &res.communities[0].members), vec![3, 4, 7, 8, 9]);
    assert_eq!(res.communities[0].influence, 13.0);
    assert_eq!(ids(&g, &res.communities[1].members), vec![0, 1, 5, 6]);
    assert_eq!(res.communities[1].influence, 10.0);
}

#[test]
fn introduction_example_figure2() {
    // "to compute the top-2 influential γ-communities in the graph in
    // Figure 2(a) with γ = 3, we first count ... G≥9 ... which is 1 ...
    // we obtain τ2 = 5 ... there are three influential γ-communities in
    // G≥5 — the subgraphs induced by vertices {v0,v1,v5,v6},
    // {v3,v4,v8,v9} and {v3,v4,v8,v9,v10}"
    let g = figure2a();
    let res = top_k(&g, 3, 2);
    assert_eq!(res.communities.len(), 2);
    assert_eq!(ids(&g, &res.communities[0].members), vec![3, 4, 8, 9]);
    assert_eq!(ids(&g, &res.communities[1].members), vec![0, 1, 5, 6]);
    // the full community list of G≥5 includes the third, nested community
    let all = top_k(&g, 3, 10);
    let memberships: Vec<Vec<u64>> = all
        .communities
        .iter()
        .map(|c| ids(&g, &c.members))
        .collect();
    assert!(memberships.contains(&vec![3, 4, 8, 9, 10]));
}

#[test]
fn problem_statement_figure3_top4() {
    // "consider the graph in Figure 3 with γ = 3 and k = 4. The top-4
    // influential γ-communities are {v3,v11,v12,v20}, {v1,v6,v7,v16},
    // {v3,v11,v12,v13,v20} and {v1,v5,v6,v7,v16} with influence values
    // 18, 14, 13 and 12"
    let g = figure3();
    let forced = |id: AlgorithmId| {
        TopKQuery::new(3)
            .k(4)
            .algorithm(Selection::Forced(id))
            .run(&g)
            .expect("valid query")
            .communities
    };
    for communities in [
        top_k(&g, 3, 4).communities,
        forced(AlgorithmId::OnlineAll),
        forced(AlgorithmId::Forward),
        forced(AlgorithmId::Backward),
        ProgressiveSearch::new(&g, 3).take(4).collect(),
    ] {
        assert_eq!(communities.len(), 4);
        assert_eq!(ids(&g, &communities[0].members), vec![3, 11, 12, 20]);
        assert_eq!(ids(&g, &communities[1].members), vec![1, 6, 7, 16]);
        assert_eq!(ids(&g, &communities[2].members), vec![3, 11, 12, 13, 20]);
        assert_eq!(ids(&g, &communities[3].members), vec![1, 5, 6, 7, 16]);
        assert_eq!(
            communities.iter().map(|c| c.influence).collect::<Vec<_>>(),
            vec![18.0, 14.0, 13.0, 12.0]
        );
    }
}

#[test]
fn example_2_1_influence_9_community() {
    // "the subgraph g2 induced by vertices {v3,v9,v10,v11,v12,v13,v20} is
    // an influential γ-community" (influence 9 = ω(v10)); and
    // "{v3,v10,v11,v12,v20} ... is not an influential γ-community because
    // it is not maximal"
    let g = figure3();
    let all: Vec<Community> = TopKQuery::new(3).stream(&g).expect("valid query").collect();
    let nine = all.iter().find(|c| c.influence == 9.0).expect("must exist");
    assert_eq!(ids(&g, &nine.members), vec![3, 9, 10, 11, 12, 13, 20]);
    use influential_communities::search::community::verify;
    let g1: Vec<u32> = [3u64, 10, 11, 12, 20]
        .iter()
        .map(|&v| g.rank_of_external(v).unwrap())
        .collect();
    assert!(verify::is_connected(&g, &g1));
    assert!(verify::min_degree(&g, &g1) >= 3);
    assert!(!verify::is_influential_community(&g, &g1, 3));
}

#[test]
fn example_3_1_prefix_growth_trace() {
    // the exact LocalSearch trace: τ1 = ω(v11) = 18 (7th largest weight),
    // CountIC(G≥τ1) = 1 < 4; grow to size ≥ 36 ⇒ τ2 = ω(v5) = 12;
    // CountIC(G≥τ2) = 4 ⇒ stop
    let g = figure3();
    let res = top_k(&g, 3, 4);
    assert_eq!(res.stats.rounds, 2);
    assert_eq!(res.stats.final_prefix_len, 13);
    assert_eq!(res.stats.final_prefix_size, 36);
    assert_eq!(g.external_id(6), 11); // the 7th vertex is v11, weight 18
    assert_eq!(g.weight(6), 18.0);
    assert_eq!(g.external_id(12), 5); // the 13th vertex is v5, weight 12
    assert_eq!(g.weight(12), 12.0);
}

#[test]
fn definition_5_1_noncontainment() {
    // the non-containment communities among Figure 3's top communities are
    // the two cliques (they contain no other influential γ-community)
    let g = figure3();
    let res = noncontainment::local_top_k(&g, 3, 2);
    assert_eq!(ids(&g, &res.communities[0].members), vec![3, 11, 12, 20]);
    assert_eq!(ids(&g, &res.communities[1].members), vec![1, 6, 7, 16]);
    // NC communities are pairwise disjoint (stated after Definition 5.1)
    let all = noncontainment::forward_top_k(&g, 3, usize::MAX);
    let mut seen = std::collections::HashSet::new();
    for c in &all.communities {
        for &m in &c.members {
            assert!(seen.insert(m));
        }
    }
}

#[test]
fn section_5_2_truss_case_study() {
    // γ-truss communities on Figure 3: for γ = 4 the 4-cliques qualify
    // (every edge of K4 is in exactly 2 = γ−2 triangles)
    let g = figure3();
    let res = truss::global_top_k(&g, 4, usize::MAX);
    let sets: Vec<Vec<u64>> = res
        .communities
        .iter()
        .map(|c| ids(&g, &c.members))
        .collect();
    assert!(sets.contains(&vec![3, 11, 12, 20]));
    assert!(sets.contains(&vec![1, 6, 7, 16]));
}

//! Integration tests for the semi-external algorithms: answers must match
//! the in-memory algorithms exactly, and the I/O profile must show the
//! locality the paper measures (LocalSearch-SE reads a prefix;
//! OnlineAll-SE streams everything).

use ic_graph::generators::{assemble, barabasi_albert, gnm, WeightKind};
use ic_graph::scratch::ScratchDir;
use ic_graph::{DiskGraph, WeightedGraph};
use influential_communities::search::{semi_external, TopKQuery};

fn spill(g: &WeightedGraph, dir: &ScratchDir, name: &str) -> DiskGraph {
    DiskGraph::create(g, dir.file(name)).unwrap()
}

#[test]
fn se_answers_match_in_memory_on_random_graphs() {
    let dir = ScratchDir::new("ic-it-se");
    for seed in 0..4u64 {
        let n = 120;
        let g = assemble(n, &gnm(n, 500, seed), WeightKind::Uniform(seed + 11));
        let dg = spill(&g, &dir, &format!("gnm-{seed}.bin"));
        for gamma in 1..=4u32 {
            for k in [1usize, 3, 9] {
                let reference = TopKQuery::new(gamma).k(k).run(&g).unwrap().communities;
                let (ls, _) = semi_external::local_search_se_top_k(&dg, gamma, k).unwrap();
                let (oa, _) = semi_external::online_all_se_top_k(&dg, gamma, k).unwrap();
                assert_eq!(ls.len(), reference.len(), "seed={seed} γ={gamma} k={k}");
                assert_eq!(oa.len(), reference.len());
                for ((a, b), c) in ls.iter().zip(&oa).zip(&reference) {
                    assert_eq!(a.members, c.members, "LS-SE seed={seed} γ={gamma} k={k}");
                    assert_eq!(b.members, c.members, "OA-SE seed={seed} γ={gamma} k={k}");
                    assert_eq!(a.influence, c.influence);
                }
            }
        }
    }
}

#[test]
fn io_locality_shape() {
    // on a larger skewed graph, LocalSearch-SE must read a small fraction
    // of the file while OnlineAll-SE reads all of it (Figures 16–17)
    let dir = ScratchDir::new("ic-it-se");
    let n = 5_000;
    let g = assemble(n, &barabasi_albert(n, 6, 31), WeightKind::PageRank);
    let dg = spill(&g, &dir, "ba-locality.bin");
    let (_, ls) = semi_external::local_search_se_top_k(&dg, 4, 5).unwrap();
    let (_, oa) = semi_external::online_all_se_top_k(&dg, 4, 5).unwrap();
    assert_eq!(oa.io.edges_read(), g.m() as u64);
    assert!(
        (ls.io.edges_read() as f64) < 0.5 * g.m() as f64,
        "LocalSearch-SE read {}/{} edges",
        ls.io.edges_read(),
        g.m()
    );
    assert!(ls.peak_resident_edges <= oa.peak_resident_edges);
    assert!(ls.visited_vertices <= n);
}

#[test]
fn se_io_grows_with_k() {
    let dir = ScratchDir::new("ic-it-se");
    let n = 3_000;
    let g = assemble(n, &barabasi_albert(n, 5, 13), WeightKind::PageRank);
    let dg = spill(&g, &dir, "ba-growth.bin");
    let mut prev = 0u64;
    for k in [1usize, 5, 25, 125] {
        let (_, st) = semi_external::local_search_se_top_k(&dg, 3, k).unwrap();
        assert!(
            st.io.bytes_read >= prev,
            "I/O must be monotone in k: {} then {}",
            prev,
            st.io.bytes_read
        );
        prev = st.io.bytes_read;
    }
}

//! Golden regression tests: the exact top-k community outputs for the
//! paper's worked example and the Small-suite serving datasets are pinned
//! in checked-in files, so a refactor of the search stack (or of the
//! graph substrate underneath it) cannot silently change answers.
//!
//! On mismatch the assertion prints both versions; if a change is
//! *intended* (e.g. the suite generators were deliberately re-seeded),
//! regenerate with:
//!
//! ```sh
//! GOLDEN_REGENERATE=1 cargo test --test golden_topk
//! ```
//!
//! Influence values are printed with Rust's shortest-round-trip `f64`
//! formatting, which is exact: two outputs compare equal iff every
//! community and influence value is bit-identical.

use std::fmt::Write as _;
use std::path::PathBuf;

use influential_communities::graph::paper::figure3;
use influential_communities::graph::suite::small_dataset;
use influential_communities::graph::WeightedGraph;
use influential_communities::search::query::{AlgorithmId, Selection};
use influential_communities::search::TopKQuery;

/// One pinned dataset: file stem, graph, and the (γ, k) queries whose
/// answers are frozen.
type GoldenCase = (&'static str, WeightedGraph, Vec<(u32, usize)>);

/// The pinned corpus.
fn corpus() -> Vec<GoldenCase> {
    vec![
        ("figure3", figure3(), vec![(3, 4), (3, 100), (2, 6)]),
        ("email", small_dataset("email"), vec![(4, 8), (8, 8)]),
        ("wiki", small_dataset("wiki"), vec![(4, 8), (8, 8)]),
    ]
}

/// Renders the queries' answers in the stable golden format.
fn render(g: &WeightedGraph, queries: &[(u32, usize)]) -> String {
    let mut out = String::new();
    for &(gamma, k) in queries {
        let result = TopKQuery::new(gamma)
            .k(k)
            .algorithm(Selection::Forced(AlgorithmId::LocalSearch))
            .run(g)
            .expect("valid query");
        writeln!(
            out,
            "QUERY gamma={gamma} k={k} count={}",
            result.communities.len()
        )
        .unwrap();
        for c in &result.communities {
            let mut ids = c.external_members(g);
            ids.sort_unstable();
            let members = ids
                .iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(",");
            writeln!(out, "C influence={} members={members}", c.influence).unwrap();
        }
        writeln!(out, "END").unwrap();
    }
    out
}

fn golden_path(stem: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{stem}.topk.txt"))
}

#[test]
fn answers_match_checked_in_goldens() {
    let regenerate = std::env::var_os("GOLDEN_REGENERATE").is_some();
    for (stem, graph, queries) in corpus() {
        let actual = render(&graph, &queries);
        let path = golden_path(stem);
        if regenerate {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &actual).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: cannot read golden file ({e}); run with GOLDEN_REGENERATE=1 \
                 to create it",
                path.display()
            )
        });
        assert_eq!(
            actual,
            expected,
            "{stem}: top-k output drifted from {}; if intended, regenerate with \
             GOLDEN_REGENERATE=1",
            path.display()
        );
    }
}

/// The golden corpus must stay non-trivial: every file pins at least one
/// real community, so an accidental always-empty regression cannot
/// silently re-pin itself via regeneration.
#[test]
fn goldens_are_non_trivial() {
    for (stem, graph, queries) in corpus() {
        let rendered = render(&graph, &queries);
        assert!(
            rendered.lines().filter(|l| l.starts_with("C ")).count() >= 4,
            "{stem}: suspiciously few communities:\n{rendered}"
        );
    }
}

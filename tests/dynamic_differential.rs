//! Differential test for the dynamic-update subsystem: an incrementally
//! maintained [`DynamicGraph`] must be *indistinguishable* from throwing
//! everything away and rebuilding.
//!
//! Each case drives a seeded random update stream (edge inserts/deletes,
//! vertex adds/removals, reweights — 100+ accepted ops) against both a
//! `DynamicGraph` and an independent shadow model (a plain edge set +
//! weight map mutated by the same ops). After every `COMMIT`, the top-k
//! answers from the committed snapshot must exactly equal the answers
//! from a from-scratch `WeightedGraph` rebuild of the shadow, for
//! γ ∈ {2, 3, 4} and k ∈ {1, 8, 64}, on both generator families the
//! serving suite uses (uniform G(n,m) and Barabási–Albert/PageRank).

use std::collections::{BTreeMap, BTreeSet};

use influential_communities::dynamic::DynamicGraph;
use influential_communities::graph::generators::{assemble, barabasi_albert, gnm, WeightKind};
use influential_communities::graph::stats::graph_stats;
use influential_communities::graph::{GraphBuilder, Pcg32, WeightedGraph};
use influential_communities::search::query::{AlgorithmId, Selection};
use influential_communities::search::{ProgressiveSearch, TopKQuery};
use proptest::prelude::*;
use proptest::TestCaseError;

const GAMMAS: [u32; 3] = [2, 3, 4];
const KS: [usize; 3] = [1, 8, 64];

/// Independent bookkeeping of what the graph should look like. Mutated
/// alongside the `DynamicGraph` by the same ops, rebuilt from scratch at
/// every commit. Deliberately ordered containers: the op generator
/// samples from it, and sampling must be deterministic per seed.
struct Shadow {
    weights: BTreeMap<u64, f64>,
    edges: BTreeSet<(u64, u64)>,
}

impl Shadow {
    fn of(g: &WeightedGraph) -> Self {
        let weights = (0..g.n() as u32)
            .map(|r| (g.external_id(r), g.weight(r)))
            .collect();
        let edges = g
            .edges()
            .map(|(a, b)| {
                let (x, y) = (g.external_id(a), g.external_id(b));
                (x.min(y), x.max(y))
            })
            .collect();
        Shadow { weights, edges }
    }

    fn rebuild(&self) -> WeightedGraph {
        let mut b = GraphBuilder::with_capacity(self.edges.len());
        for (&v, &w) in &self.weights {
            b.set_weight(v, w);
            b.add_vertex(v);
        }
        for &(u, v) in &self.edges {
            b.add_edge(u, v);
        }
        b.build().expect("shadow state is a valid graph")
    }

    fn vertex(&self, rng: &mut Pcg32) -> u64 {
        let keys: Vec<u64> = self.weights.keys().copied().collect();
        keys[rng.gen_index(keys.len())]
    }
}

/// Compares every (γ, k) answer between the incrementally produced
/// snapshot and the from-scratch rebuild.
fn assert_answers_match(
    inc: &WeightedGraph,
    rebuilt: &WeightedGraph,
    context: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(inc.n(), rebuilt.n(), "{}: vertex count", context);
    prop_assert_eq!(inc.m(), rebuilt.m(), "{}: edge count", context);
    for gamma in GAMMAS {
        for k in KS {
            let q = TopKQuery::new(gamma)
                .k(k)
                .algorithm(Selection::Forced(AlgorithmId::LocalSearch));
            let a = q.run(inc).unwrap().communities;
            let b = q.run(rebuilt).unwrap().communities;
            prop_assert_eq!(
                a.len(),
                b.len(),
                "{}: γ={} k={}: community count",
                context,
                gamma,
                k
            );
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                prop_assert_eq!(
                    x.influence,
                    y.influence,
                    "{}: γ={} k={} community {}: influence",
                    context,
                    gamma,
                    k,
                    i
                );
                let mut xm = x.external_members(inc);
                let mut ym = y.external_members(rebuilt);
                xm.sort_unstable();
                ym.sort_unstable();
                prop_assert_eq!(
                    xm,
                    ym,
                    "{}: γ={} k={} community {}: members",
                    context,
                    gamma,
                    k,
                    i
                );
            }
        }
    }
    // the progressive stream sees the same world
    let pa: Vec<f64> = ProgressiveSearch::new(inc, 3)
        .take(8)
        .map(|c| c.influence)
        .collect();
    let pb: Vec<f64> = ProgressiveSearch::new(rebuilt, 3)
        .take(8)
        .map(|c| c.influence)
        .collect();
    prop_assert_eq!(pa, pb, "{}: progressive prefix", context);
    Ok(())
}

/// Drives `total_ops` accepted random updates against both models,
/// committing (and differentially checking) every `commit_every` ops.
fn drive(
    start: WeightedGraph,
    seed: u64,
    total_ops: usize,
    commit_every: usize,
    family: &str,
) -> Result<(), TestCaseError> {
    let mut shadow = Shadow::of(&start);
    let mut dg = DynamicGraph::new(start);
    let mut rng = Pcg32::new(seed);
    let mut next_id = 1_000_000u64;
    let mut accepted = 0usize;
    let mut commits = 0usize;
    while accepted < total_ops {
        let roll = rng.gen_range(100);
        let ok = if roll < 42 {
            // insert a fresh edge between existing vertices
            let u = shadow.vertex(&mut rng);
            let v = shadow.vertex(&mut rng);
            let key = (u.min(v), u.max(v));
            if u != v && !shadow.edges.contains(&key) {
                dg.insert_edge(u, v).expect("insert accepted");
                shadow.edges.insert(key);
                true
            } else {
                false
            }
        } else if roll < 78 {
            // delete a random present edge
            if shadow.edges.is_empty() {
                false
            } else {
                let idx = rng.gen_index(shadow.edges.len());
                let &(u, v) = shadow.edges.iter().nth(idx).expect("index in range");
                dg.delete_edge(u, v).expect("delete accepted");
                shadow.edges.remove(&(u, v));
                true
            }
        } else if roll < 86 {
            // add a brand-new vertex
            let v = next_id;
            next_id += 1;
            let w = 0.5 + rng.gen_f64() * 40.0;
            dg.add_vertex(v, w).expect("add accepted");
            shadow.weights.insert(v, w);
            true
        } else if roll < 93 {
            // reweight an existing vertex
            let v = shadow.vertex(&mut rng);
            let w = 0.5 + rng.gen_f64() * 40.0;
            dg.reweight(v, w).expect("reweight accepted");
            shadow.weights.insert(v, w);
            true
        } else {
            // remove a vertex and its incident edges
            if shadow.weights.len() <= 8 {
                false
            } else {
                let v = shadow.vertex(&mut rng);
                dg.remove_vertex(v).expect("remove accepted");
                shadow.weights.remove(&v);
                shadow.edges.retain(|&(a, b)| a != v && b != v);
                true
            }
        };
        if !ok {
            continue;
        }
        accepted += 1;
        if accepted.is_multiple_of(commit_every) || accepted == total_ops {
            let receipt = dg.commit();
            let rebuilt = shadow.rebuild();
            let context = format!("{family} seed={seed} after {accepted} ops");
            assert_answers_match(&receipt.graph, &rebuilt, &context)?;
            // commit-time stats must equal what a full recompute reports
            prop_assert_eq!(receipt.stats, graph_stats(&rebuilt), "{}: stats", context);
            commits += 1;
        }
    }
    prop_assert!(commits >= 4, "stream must commit repeatedly");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// ≥120-op streams over uniform G(n,m) graphs.
    #[test]
    fn gnm_streams_match_rebuild(seed in 0u64..10_000, density in 2usize..5) {
        let n = 120;
        let g = assemble(n, &gnm(n, n * density, seed), WeightKind::Uniform(seed ^ 0x5EED));
        drive(g, seed.wrapping_mul(31).wrapping_add(7), 120, 24, "gnm")?;
    }

    /// ≥120-op streams over Barabási–Albert graphs with PageRank weights.
    #[test]
    fn barabasi_albert_streams_match_rebuild(seed in 0u64..10_000, d in 2usize..5) {
        let n = 140;
        let g = assemble(n, &barabasi_albert(n, d, seed), WeightKind::PageRank);
        drive(g, seed.wrapping_mul(17).wrapping_add(3), 120, 24, "ba")?;
    }
}

/// The same differential guarantee holds through the serving stack: a
/// protocol-driven UPDATE/COMMIT stream answers exactly like a rebuilt
/// graph registered from scratch.
#[test]
fn service_update_stream_matches_rebuild() {
    use influential_communities::service::{Query, Service, ServiceConfig};

    let n = 100;
    let g = assemble(n, &gnm(n, 300, 9), WeightKind::Uniform(99));
    let mut shadow = Shadow::of(&g);
    let svc = Service::new(ServiceConfig {
        workers: 2,
        cache_capacity: 64,
        cache_shards: 2,
        ..ServiceConfig::default()
    });
    svc.register("live", g);
    let mut rng = Pcg32::new(0xD1FF);
    let mut accepted = 0usize;
    while accepted < 100 {
        let u = shadow.vertex(&mut rng);
        let v = shadow.vertex(&mut rng);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        let op = if shadow.edges.contains(&key) {
            shadow.edges.remove(&key);
            influential_communities::dynamic::UpdateOp::DeleteEdge { u, v }
        } else {
            shadow.edges.insert(key);
            influential_communities::dynamic::UpdateOp::InsertEdge {
                u,
                v,
                default_weight: None,
            }
        };
        svc.update("live", op).expect("update accepted");
        accepted += 1;
        if accepted.is_multiple_of(20) {
            svc.commit_updates("live").expect("commit succeeds");
            svc.register("rebuilt", shadow.rebuild());
            for gamma in GAMMAS {
                for k in KS {
                    let a = svc.query(Query::new("live", gamma, k)).unwrap();
                    let b = svc.query(Query::new("rebuilt", gamma, k)).unwrap();
                    let am: Vec<Vec<u64>> = a
                        .communities
                        .iter()
                        .map(|c| c.external_members_in(&a.graph_instance))
                        .collect();
                    let bm: Vec<Vec<u64>> = b
                        .communities
                        .iter()
                        .map(|c| c.external_members_in(&b.graph_instance))
                        .collect();
                    assert_eq!(am, bm, "γ={gamma} k={k} after {accepted} ops");
                }
            }
        }
    }
}

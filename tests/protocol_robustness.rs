//! Protocol robustness: `handle_line` must survive anything a client can
//! type — malformed verbs, truncated argument lists, numeric garbage,
//! oversized payloads, and hostile `UPDATE`/`COMMIT` sequences — by
//! replying `ERR …` (or `OK` for accidentally valid input), never by
//! panicking. A panic inside a connection thread would poison the shared
//! registry/session locks and take the whole service down, so after the
//! barrage the service must still answer real queries correctly.

use std::sync::Arc;

use influential_communities::graph::paper::figure3;
use influential_communities::graph::Pcg32;
use influential_communities::prelude::{AlgorithmId, Selection, TopKQuery};
use influential_communities::search::local_search::CountStrategy;
use influential_communities::service::protocol::handle_line;
use influential_communities::service::{Query, Service, ServiceConfig};

fn svc() -> Arc<Service> {
    let svc = Service::new(ServiceConfig {
        workers: 2,
        cache_capacity: 32,
        cache_shards: 2,
        ..ServiceConfig::default()
    });
    svc.register("fig3", figure3());
    svc
}

/// Every reply is a full string starting `OK`/`ERR` (or empty for
/// comments); nothing may panic.
fn feed(svc: &Arc<Service>, line: &str) -> String {
    let reply = handle_line(svc, line);
    assert!(
        reply.is_empty() || reply.starts_with("OK") || reply.starts_with("ERR "),
        "unexpected reply shape for {line:?}: {reply:?}"
    );
    reply
}

#[test]
fn malformed_and_truncated_lines_error_cleanly() {
    let svc = svc();
    let cases: &[&str] = &[
        // truncated forms of every verb
        "LOAD",
        "LOAD x",
        "GEN",
        "GEN a",
        "GEN a gnm",
        "GEN a gnm 10",
        "GEN a gnm 10 20",
        "QUERY",
        "QUERY fig3",
        "QUERY fig3 3",
        "BATCH",
        "BATCH ;",
        "BATCH ; ; ;",
        "BATCH fig3",
        "BATCH fig3 3",
        "BATCH fig3 3 4 ;",
        "BATCH ; fig3 3 4",
        "BATCH fig3 3 4 ; fig3",
        "BATCH fig3 3 4 ; ; fig3 3 4",
        "BATCH fig3 3 4 warp ; fig3 3 4",
        "BATCH fig3 3 4 ; fig3 3 4 auto extra",
        "BATCH fig3 ; 3 4",
        "BATCH ;;;;;;;;",
        "EXPLAIN",
        "EXPLAIN fig3 3",
        "EXPLAIN ANALYZE",
        "EXPLAIN ANALYZE fig3",
        "EXPLAIN ANALYZE fig3 3",
        "EXPLAIN ANALYZE nope 3 4",
        "EXPLAIN ANALYZE fig3 3 4 warp",
        "EXPLAIN ANALYZE fig3 3 4 auto extra",
        "EXPLAIN ANALYZE fig3 -1 4",
        "OPEN",
        "OPEN fig3",
        "NEXT",
        "CLOSE",
        "UPDATE",
        "UPDATE fig3",
        "UPDATE fig3 ADD",
        "UPDATE fig3 ADD 1",
        "UPDATE fig3 DEL 1",
        "UPDATE fig3 ADDV",
        "UPDATE fig3 ADDV 1",
        "UPDATE fig3 DELV",
        "UPDATE fig3 REWEIGHT 1",
        "COMMIT",
        // surplus arguments
        "QUERY fig3 3 4 auto extra",
        "OPEN fig3 3 4",
        "CLOSE 1 2",
        "COMMIT fig3 now",
        "UPDATE fig3 ADD 1 2 3.0 4",
        // numeric garbage and overflow
        "QUERY fig3 -1 4",
        "QUERY fig3 3 -4",
        "QUERY fig3 99999999999999999999 4",
        "QUERY fig3 3 99999999999999999999999999",
        "NEXT not-a-number",
        "NEXT 18446744073709551616",
        "UPDATE fig3 ADD 1e3 2",
        "UPDATE fig3 ADD 1 2 not-a-float",
        "UPDATE fig3 ADDV 7 inf-inity",
        "UPDATE fig3 REWEIGHT 3 1.0.0",
        // unknown verbs / modes / actions / generators
        "FROBNICATE the graph",
        "QUERY fig3 3 4 warp",
        "GEN x unknown 1 2 3",
        "UPDATE fig3 MERGE 1 2",
        // semantic rejections that must not disturb state
        "UPDATE fig3 DEL 0 9",
        "UPDATE fig3 ADD 3 11",
        "UPDATE fig3 ADD 777 778",
        "UPDATE fig3 DELV 777",
        "UPDATE nope ADD 1 2 1.0",
        "COMMIT nope",
        "LOAD ghost /nonexistent/path/graph.icg",
        // storage verbs: truncated, hostile paths, bad budgets
        "LOADX",
        "LOADX x",
        "LOADX ghost /nonexistent/path/graph.icsr",
        "LOADX ghost /dev/null",
        "LOADX ghost /etc/hostname",
        "LOADX ghost ../../../../etc/passwd",
        "LOADX ghost /nonexistent/path/graph.icsr not-a-budget",
        "LOADX ghost /nonexistent/path/graph.icsr 64 extra",
        "SAVE",
        "SAVE fig3",
        "SAVE nope /tmp/never-written.icsr",
        "SAVE fig3 /nonexistent/dir/never-written.icsr",
        "SAVE fig3 /tmp/a.icsr extra",
        // observability verbs: surplus arguments, numeric garbage
        "METRICS extra",
        "METRICS 1 2 3",
        "SLOWLOG ten",
        "SLOWLOG -1",
        "SLOWLOG 1 2",
        "SLOWLOG 99999999999999999999999999",
    ];
    for &line in cases {
        let reply = feed(&svc, line);
        assert!(reply.starts_with("ERR "), "{line:?} -> {reply:?}");
    }
    // comments and blanks produce no reply at all
    assert_eq!(feed(&svc, ""), "");
    assert_eq!(feed(&svc, "   "), "");
    assert_eq!(feed(&svc, "# QUERY fig3 3 4"), "");
}

#[test]
fn oversized_inputs_do_not_panic_or_allocate_absurdly() {
    let svc = svc();
    // a graph name of a megabyte, a megabyte of digits, huge whitespace
    let long_name = "g".repeat(1 << 20);
    let digits = "9".repeat(1 << 20);
    let many_tokens = "x ".repeat(200_000);
    let many_batch = "fig3 3 4 ; ".repeat(100_000);
    for line in [
        format!("QUERY {long_name} 3 4"),
        format!("QUERY fig3 {digits} 4"),
        format!("UPDATE fig3 ADD {digits} {digits}"),
        format!("UPDATE {long_name} ADD 1 2 1.0"),
        format!("COMMIT {long_name}"),
        many_tokens.clone(),
        format!("QUERY fig3 3 4 {many_tokens}"),
        format!("BATCH {many_batch}"),
        format!("BATCH fig3 {digits} 4"),
        format!("BATCH {many_tokens}"),
    ] {
        let reply = feed(&svc, &line);
        assert!(reply.starts_with("ERR "), "oversized line -> {reply:?}");
    }
}

#[test]
fn seeded_token_fuzzing_never_panics() {
    let svc = svc();
    let verbs = [
        "LOAD", "LOADX", "SAVE", "GEN", "GRAPHS", "QUERY", "BATCH", "EXPLAIN", "UPDATE", "COMMIT",
        "OPEN", "NEXT", "CLOSE", "STATS", "HELP", "QUIT", "update", "Commit", "batch", "",
    ];
    let tokens = [
        "fig3",
        "nope",
        "ADD",
        "DEL",
        "ADDV",
        "DELV",
        "REWEIGHT",
        "gnm",
        "ba",
        "rmat",
        "auto",
        "forward",
        "naive",
        "backward",
        "truss",
        "0",
        "1",
        "3",
        "4",
        "-1",
        "1.5",
        "NaN",
        "inf",
        "9999999999999999999999",
        "\u{1F4A5}",
        "..",
        "--",
        "x",
        ";",
        ";;",
        "fig3 3 4 ;",
        "; fig3 3 4",
    ];
    let mut rng = Pcg32::new(0xF422);
    for _ in 0..3000 {
        let mut line = String::from(verbs[rng.gen_index(verbs.len())]);
        for _ in 0..rng.gen_index(6) {
            line.push(' ');
            line.push_str(tokens[rng.gen_index(tokens.len())]);
        }
        feed(&svc, &line); // shape-checked inside; must not panic
    }
}

/// Fuzz the centralized `TopKQuery` validation: random (often hostile)
/// parameter combinations must produce a typed accept/reject — never a
/// panic — and every accepted query must actually run.
#[test]
fn seeded_builder_fuzzing_never_panics() {
    let g = figure3();
    let gammas: [u32; 7] = [0, 1, 2, 3, 9, u32::MAX, 4];
    let ks: [usize; 8] = [
        0,
        1,
        2,
        4,
        1000,
        TopKQuery::MAX_K,
        TopKQuery::MAX_K + 1,
        usize::MAX,
    ];
    let deltas: [f64; 8] = [
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        -1.0,
        0.0,
        1.0,
        1.0001,
        2.0,
    ];
    let selections: [Selection; 8] = [
        Selection::Auto,
        Selection::Forced(AlgorithmId::LocalSearch),
        Selection::Forced(AlgorithmId::Progressive),
        Selection::Forced(AlgorithmId::Forward),
        Selection::Forced(AlgorithmId::OnlineAll),
        Selection::Forced(AlgorithmId::Backward),
        Selection::Forced(AlgorithmId::Naive),
        Selection::Forced(AlgorithmId::Truss),
    ];
    let countings = [CountStrategy::CountIc, CountStrategy::OnlineAll];
    let mut rng = Pcg32::new(0xB01D);
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for _ in 0..4000 {
        let q = TopKQuery::new(gammas[rng.gen_index(gammas.len())])
            .k(ks[rng.gen_index(ks.len())])
            .delta(deltas[rng.gen_index(deltas.len())])
            .algorithm(selections[rng.gen_index(selections.len())])
            .count_strategy(countings[rng.gen_index(countings.len())])
            .non_containment(rng.gen_index(2) == 0);
        match q.validate() {
            Ok(()) => {
                accepted += 1;
                // an accepted query must execute without panicking, both
                // batch and streamed (bound the stream pull — accepted k
                // can be astronomically large)
                let res = q.run(&g).expect("validated queries run");
                assert!(res.communities.len() <= q.k_value());
                let _ = q
                    .stream(&g)
                    .expect("validated queries stream")
                    .take(8)
                    .count();
            }
            Err(e) => {
                rejected += 1;
                // typed errors render; run() surfaces the same rejection
                // (compare rendered form: NaN payloads are non-Eq)
                assert!(!e.to_string().is_empty());
                assert_eq!(q.run(&g).unwrap_err().to_string(), e.to_string());
            }
        }
    }
    assert!(accepted > 100, "fuzz grid must exercise the accept path");
    assert!(rejected > 100, "fuzz grid must exercise the reject path");
}

/// `NEXT <session> 0` used to reply `OK count=0` — indistinguishable
/// from the documented "stream exhausted" signal, so a probing client
/// wrongly concluded the stream was done. The reply now carries an
/// explicit `done=` derived from the session iterator.
#[test]
fn next_zero_probe_is_not_mistaken_for_exhaustion() {
    let svc = svc();
    let open = feed(&svc, "OPEN fig3 3");
    let id: u64 = open.trim_start_matches("OK session=").parse().unwrap();
    let probe = feed(&svc, &format!("NEXT {id} 0"));
    assert!(probe.starts_with("OK count=0 done=0"), "{probe}");
    // the stream yields everything afterwards, each reply flagged live
    // until the final one
    let total = TopKQuery::new(3)
        .k(usize::MAX / 4)
        .run(&figure3())
        .unwrap()
        .communities
        .len();
    for i in 0..total {
        let reply = feed(&svc, &format!("NEXT {id} 1"));
        let expect_done = i + 1 == total;
        assert!(
            reply.starts_with(&format!("OK count=1 done={}", u8::from(expect_done))),
            "community {i}: {reply}"
        );
    }
    let after = feed(&svc, &format!("NEXT {id} 0"));
    assert!(after.starts_with("OK count=0 done=1"), "{after}");
    assert!(feed(&svc, &format!("CLOSE {id}")).starts_with("OK"));
}

#[test]
fn service_still_answers_correctly_after_the_barrage() {
    let svc = svc();
    // throw the full hostile corpus at it first
    for line in [
        "UPDATE fig3 ADD 3 11",
        "UPDATE fig3 DEL 0 9",
        "COMMIT nope",
        "QUERY fig3 0 0",
        "FROBNICATE",
        "NEXT 42",
    ] {
        let _ = feed(&svc, line);
    }
    // interleave a *valid* update cycle to prove state is not wedged
    assert!(feed(&svc, "UPDATE fig3 DEL 3 11").starts_with("OK"));
    assert!(feed(&svc, "COMMIT fig3").starts_with("OK"));

    // the service must answer exactly like a single-threaded reference
    let mut dg = influential_communities::dynamic::DynamicGraph::new(figure3());
    dg.delete_edge(3, 11).unwrap();
    let reference = dg.commit().graph;
    let expected = TopKQuery::new(3).k(4).run(&reference).unwrap().communities;
    let resp = svc.query(Query::new("fig3", 3, 4)).unwrap();
    assert_eq!(resp.communities.len(), expected.len());
    for (a, b) in resp.communities.iter().zip(&expected) {
        assert_eq!(
            a.external_members_in(&resp.graph_instance),
            b.external_members(&reference)
        );
    }
    // sessions also still work end to end
    let open = feed(&svc, "OPEN fig3 3");
    assert!(open.starts_with("OK session="), "{open}");
    let id: u64 = open.trim_start_matches("OK session=").parse().unwrap();
    assert!(feed(&svc, &format!("NEXT {id} 2")).contains("count=2"));
    assert!(feed(&svc, &format!("CLOSE {id}")).starts_with("OK"));
}
